open Bw_machine

type result = {
  machine : Machine.t;
  observation : Interp.observation;
  counters : Counters.t;
  cache : Cache.t;
  breakdown : Timing.breakdown;
}

let engine_name = function
  | `Compiled -> "compiled"
  | `Interpreted -> "interpreted"

(* Metrics publication happens once per run, after the engines and the
   simulator have finished — the per-access hot paths (Cache.read/write,
   Trace_buffer.record) carry no metrics calls, which is what keeps the
   disabled-observability overhead at zero on the micro-benchmarks. *)
let publish_engine_raw ~engine ~flushes ~elements ~flops =
  let pfx = "engine." ^ engine_name engine ^ "." in
  let c name = Bw_obs.Metrics.counter (pfx ^ name) in
  Bw_obs.Metrics.incr (c "runs");
  Bw_obs.Metrics.incr ~by:flushes (c "trace_flushes");
  Bw_obs.Metrics.incr ~by:elements (c "elements");
  Bw_obs.Metrics.incr ~by:flops (c "flops")

let publish_engine ~engine ~sink ~(counters : Counters.t) =
  publish_engine_raw ~engine
    ~flushes:(Trace_buffer.flushes sink.Interp.trace)
    ~elements:(counters.Counters.loads + counters.Counters.stores)
    ~flops:counters.Counters.flops

let publish_cache cache =
  List.iteri
    (fun i (s : Cache.level_stats) ->
      let c name =
        Bw_obs.Metrics.counter (Printf.sprintf "cache.L%d.%s" (i + 1) name)
      in
      let misses = s.Cache.read_misses + s.Cache.write_misses in
      Bw_obs.Metrics.incr
        ~by:(s.Cache.reads + s.Cache.writes - misses)
        (c "hits");
      Bw_obs.Metrics.incr ~by:misses (c "misses");
      Bw_obs.Metrics.incr ~by:s.Cache.writebacks (c "writebacks"))
    (Cache.stats_snapshot cache);
  Bw_obs.Metrics.incr
    ~by:(Cache.memory_lines_in cache)
    (Bw_obs.Metrics.counter "cache.mem.lines_in");
  Bw_obs.Metrics.incr
    ~by:(Cache.memory_lines_out cache)
    (Bw_obs.Metrics.counter "cache.mem.lines_out")

let run_engine ~engine ~sink ?base_of program =
  let observation =
    match engine with
    | `Compiled -> Compile.run ~sink ?base_of program
    | `Interpreted -> Interp.run ~sink ?base_of program
  in
  Interp.flush_sink sink;
  observation

(* Drain one batch of trace records into the cache and the load/store
   counters, applying address translation.  This is the simulation hot
   loop: a tight walk over a flat int array, no per-record closure. *)
let drain_into_cache ~translation ~cache ~counters buf =
  let data = buf.Trace_buffer.data in
  let n = buf.Trace_buffer.len in
  let identity = Translate.is_identity translation in
  let loads = ref 0 and stores = ref 0 in
  for r = 0 to n - 1 do
    let i = r * Trace_buffer.slot_width in
    let kind = Array.unsafe_get data i in
    let addr = Array.unsafe_get data (i + 1) in
    let addr = if identity then addr else Translate.apply translation addr in
    let bytes = Array.unsafe_get data (i + 2) in
    if kind = 0 then begin
      incr loads;
      Cache.read cache ~addr ~bytes
    end
    else begin
      incr stores;
      Cache.write cache ~addr ~bytes
    end
  done;
  counters.Counters.loads <- counters.Counters.loads + !loads;
  counters.Counters.stores <- counters.Counters.stores + !stores

let array_decls (program : Bw_ir.Ast.program) =
  List.filter_map
    (fun d ->
      if Bw_ir.Ast.is_array d then
        Some (d.Bw_ir.Ast.var_name, Bw_ir.Ast.decl_bytes d)
      else None)
    program.Bw_ir.Ast.decls

let simulate ?(flush = true) ?(engine = `Compiled) ~machine
    (program : Bw_ir.Ast.program) =
  Bw_obs.Trace.with_span ~cat:"simulate"
    ~attrs:
      [ ("engine", Bw_obs.Trace.Str (engine_name engine));
        ("machine", Bw_obs.Trace.Str machine.Machine.name) ]
    ~result_attrs:(fun r ->
      [ ("loads", Bw_obs.Trace.Int r.counters.Counters.loads);
        ("stores", Bw_obs.Trace.Int r.counters.Counters.stores);
        ("flops", Bw_obs.Trace.Int r.counters.Counters.flops);
        ("memory_bytes", Bw_obs.Trace.Int (Timing.memory_bytes r.cache));
        ("predicted_s", Bw_obs.Trace.Float r.breakdown.Timing.total) ])
    ("simulate:" ^ program.Bw_ir.Ast.prog_name)
  @@ fun () ->
  let layout =
    Layout.assign ~align_bytes:machine.Machine.array_align_bytes
      ~stagger_bytes:machine.Machine.array_stagger_bytes
      (array_decls program)
  in
  let translation = Machine.fresh_translation machine in
  let cache = Machine.fresh_cache machine in
  let counters = Counters.create () in
  let sink =
    Interp.make_sink
      ~on_trace:(drain_into_cache ~translation ~cache ~counters)
      ()
  in
  let base_of name = Layout.base layout name in
  let observation = run_engine ~engine ~sink ~base_of program in
  counters.Counters.flops <- sink.Interp.flops;
  counters.Counters.int_ops <- sink.Interp.int_ops;
  if flush then Cache.flush cache;
  publish_engine ~engine ~sink ~counters;
  publish_cache cache;
  let breakdown = Timing.predict machine cache counters in
  { machine; observation; counters; cache; breakdown }

let observe ?(engine = `Compiled) program =
  let counters = Counters.create () in
  let sink =
    Interp.make_sink
      ~on_trace:(fun buf ->
        let data = buf.Trace_buffer.data in
        let n = buf.Trace_buffer.len in
        let loads = ref 0 in
        for r = 0 to n - 1 do
          if Array.unsafe_get data (r * Trace_buffer.slot_width) = 0 then incr loads
        done;
        counters.Counters.loads <- counters.Counters.loads + !loads;
        counters.Counters.stores <- counters.Counters.stores + (n - !loads))
      ()
  in
  let observation = run_engine ~engine ~sink program in
  counters.Counters.flops <- sink.Interp.flops;
  counters.Counters.int_ops <- sink.Interp.int_ops;
  publish_engine ~engine ~sink ~counters;
  (observation, counters)

let reuse_profile ?(granularity = 32) ?(engine = `Compiled)
    (program : Bw_ir.Ast.program) =
  let profile = Reuse.create ~granularity () in
  let layout = Layout.assign ~stagger_bytes:0 (array_decls program) in
  let sink =
    Interp.make_sink
      ~on_trace:
        (Trace_buffer.drain ~f:(fun _kind addr _bytes ->
             Reuse.access profile ~addr))
      ()
  in
  ignore
    (run_engine ~engine ~sink
       ~base_of:(fun name -> Layout.base layout name)
       program);
  profile

(* --- capture once, replay many -------------------------------------------- *)

(* Captured traces use a machine-independent canonical address space:
   array [i] (declaration order) lives at base [(i + 1) lsl shift] with
   [1 lsl shift >= decl_bytes], so replay recovers (array, offset) with
   one shift/mask — no per-record search — and re-bases onto any
   machine's layout before applying that machine's translation. *)
type capture = {
  captured_program : Bw_ir.Ast.program;
  captured_engine : [ `Compiled | `Interpreted ];
  captured_observation : Interp.observation;
  captured_flops : int;
  captured_int_ops : int;
  arrays : (string * int) list;
  shift : int;
  store : Trace_store.t;
}

(* Smallest shift whose span covers the largest array; floored at 12 so
   canonical bases stay page-aligned (hence line-aligned at any real
   granularity), keeping block partitions identical across layouts. *)
let canonical_shift arrays =
  let max_bytes = List.fold_left (fun acc (_, b) -> max acc b) 1 arrays in
  let rec go s = if 1 lsl s >= max_bytes then s else go (s + 1) in
  go 12

let capture ?(engine = `Compiled) (program : Bw_ir.Ast.program) =
  Bw_obs.Trace.with_span ~cat:"capture"
    ~attrs:[ ("engine", Bw_obs.Trace.Str (engine_name engine)) ]
    ~result_attrs:(fun c ->
      [ ("records", Bw_obs.Trace.Int (Trace_store.records c.store));
        ( "encoded_bytes",
          Bw_obs.Trace.Int (Trace_store.encoded_bytes c.store) ) ])
    ("capture:" ^ program.Bw_ir.Ast.prog_name)
  @@ fun () ->
  let arrays = array_decls program in
  let shift = canonical_shift arrays in
  let bases = Hashtbl.create 16 in
  List.iteri
    (fun i (name, _) -> Hashtbl.replace bases name ((i + 1) lsl shift))
    arrays;
  let store = Trace_store.create () in
  let sink =
    Interp.make_sink ~on_trace:(fun buf -> Trace_store.append_buffer store buf) ()
  in
  let observation =
    run_engine ~engine ~sink ~base_of:(Hashtbl.find bases) program
  in
  publish_engine_raw ~engine
    ~flushes:(Trace_buffer.flushes sink.Interp.trace)
    ~elements:(Trace_store.records store)
    ~flops:sink.Interp.flops;
  Bw_obs.Metrics.incr (Bw_obs.Metrics.counter "trace_store.captures");
  Bw_obs.Metrics.incr
    ~by:(Trace_store.records store)
    (Bw_obs.Metrics.counter "trace_store.records");
  Bw_obs.Metrics.incr
    ~by:(Trace_store.encoded_bytes store)
    (Bw_obs.Metrics.counter "trace_store.encoded_bytes");
  { captured_program = program;
    captured_engine = engine;
    captured_observation = observation;
    captured_flops = sink.Interp.flops;
    captured_int_ops = sink.Interp.int_ops;
    arrays;
    shift;
    store }

let replay ?(flush = true) ~machine c =
  Bw_obs.Trace.with_span ~cat:"replay"
    ~attrs:[ ("machine", Bw_obs.Trace.Str machine.Machine.name) ]
    ~result_attrs:(fun r ->
      [ ("loads", Bw_obs.Trace.Int r.counters.Counters.loads);
        ("stores", Bw_obs.Trace.Int r.counters.Counters.stores);
        ("memory_bytes", Bw_obs.Trace.Int (Timing.memory_bytes r.cache)) ])
    ("replay:" ^ c.captured_program.Bw_ir.Ast.prog_name)
  @@ fun () ->
  let layout =
    Layout.assign ~align_bytes:machine.Machine.array_align_bytes
      ~stagger_bytes:machine.Machine.array_stagger_bytes c.arrays
  in
  let machine_bases =
    Array.of_list (List.map (fun (name, _) -> Layout.base layout name) c.arrays)
  in
  let shift = c.shift in
  let mask = (1 lsl shift) - 1 in
  let remap addr =
    Array.unsafe_get machine_bases ((addr lsr shift) - 1) + (addr land mask)
  in
  let translation = Machine.fresh_translation machine in
  let cache = Machine.fresh_cache machine in
  let counters = Counters.create () in
  Trace_store.replay ~remap c.store ~translation ~cache ~counters;
  counters.Counters.flops <- c.captured_flops;
  counters.Counters.int_ops <- c.captured_int_ops;
  if flush then Cache.flush cache;
  Bw_obs.Metrics.incr (Bw_obs.Metrics.counter "trace_store.replays");
  publish_cache cache;
  let breakdown = Timing.predict machine cache counters in
  { machine;
    observation = c.captured_observation;
    counters;
    cache;
    breakdown }

let replay_many ?jobs ?flush ~machines c =
  match machines with
  | [] -> []
  | [ machine ] -> [ replay ?flush ~machine c ]
  | _ ->
    Pool.map ?jobs
      (fun machine -> replay ?flush ~machine c)
      (Array.of_list machines)
    |> Array.to_list

let simulate_many ?jobs ?flush ?engine ~machines program =
  let c = capture ?engine program in
  replay_many ?jobs ?flush ~machines c

let reuse_of_capture ?(granularity = 32) c =
  let profile = Reuse.create ~granularity () in
  Trace_store.iter c.store ~f:(fun _kind addr _bytes ->
      Reuse.access profile ~addr);
  profile

let equal_result a b =
  a.machine.Machine.name = b.machine.Machine.name
  && a.counters = b.counters
  && Cache.stats_snapshot a.cache = Cache.stats_snapshot b.cache
  && Cache.memory_lines_in a.cache = Cache.memory_lines_in b.cache
  && Cache.memory_lines_out a.cache = Cache.memory_lines_out b.cache
  && a.breakdown = b.breakdown
  && Interp.equal_observation a.observation b.observation

let effective_bandwidth r =
  Timing.effective_bandwidth r.machine r.cache r.counters

let nominal_bandwidth r =
  (* STREAM-style accounting: 8 bytes read per load, 8 written per store;
     write-allocate fills and conflict refetches are invisible to it *)
  let nominal = 8 * (r.counters.Counters.loads + r.counters.Counters.stores) in
  let t = r.breakdown.Timing.total in
  if t <= 0.0 then 0.0 else float_of_int nominal /. t

let seconds r = r.breakdown.Timing.total

let program_balance r =
  let flops = float_of_int (max 1 r.counters.Counters.flops) in
  let register = float_of_int (Counters.register_bytes r.counters) /. flops in
  let names = Machine.boundary_names r.machine in
  let boundary_values =
    List.init (Cache.level_count r.cache) (fun i ->
        if i = Cache.level_count r.cache - 1 then
          float_of_int (Timing.memory_bytes r.cache) /. flops
        else float_of_int (Cache.boundary_bytes r.cache i) /. flops)
  in
  List.combine names (register :: boundary_values)
