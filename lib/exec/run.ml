open Bw_machine

type result = {
  machine : Machine.t;
  observation : Interp.observation;
  counters : Counters.t;
  cache : Cache.t;
  breakdown : Timing.breakdown;
}

let engine_name = function
  | `Compiled -> "compiled"
  | `Interpreted -> "interpreted"

(* Metrics publication happens once per run, after the engines and the
   simulator have finished — the per-access hot paths (Cache.read/write,
   Trace_buffer.record) carry no metrics calls, which is what keeps the
   disabled-observability overhead at zero on the micro-benchmarks. *)
let publish_engine ~engine ~sink ~(counters : Counters.t) =
  let pfx = "engine." ^ engine_name engine ^ "." in
  let c name = Bw_obs.Metrics.counter (pfx ^ name) in
  Bw_obs.Metrics.incr (c "runs");
  Bw_obs.Metrics.incr
    ~by:(Trace_buffer.flushes sink.Interp.trace)
    (c "trace_flushes");
  Bw_obs.Metrics.incr
    ~by:(counters.Counters.loads + counters.Counters.stores)
    (c "elements");
  Bw_obs.Metrics.incr ~by:counters.Counters.flops (c "flops")

let publish_cache cache =
  List.iteri
    (fun i (s : Cache.level_stats) ->
      let c name =
        Bw_obs.Metrics.counter (Printf.sprintf "cache.L%d.%s" (i + 1) name)
      in
      let misses = s.Cache.read_misses + s.Cache.write_misses in
      Bw_obs.Metrics.incr
        ~by:(s.Cache.reads + s.Cache.writes - misses)
        (c "hits");
      Bw_obs.Metrics.incr ~by:misses (c "misses");
      Bw_obs.Metrics.incr ~by:s.Cache.writebacks (c "writebacks"))
    (Cache.stats_snapshot cache);
  Bw_obs.Metrics.incr
    ~by:(Cache.memory_lines_in cache)
    (Bw_obs.Metrics.counter "cache.mem.lines_in");
  Bw_obs.Metrics.incr
    ~by:(Cache.memory_lines_out cache)
    (Bw_obs.Metrics.counter "cache.mem.lines_out")

let run_engine ~engine ~sink ?base_of program =
  let observation =
    match engine with
    | `Compiled -> Compile.run ~sink ?base_of program
    | `Interpreted -> Interp.run ~sink ?base_of program
  in
  Interp.flush_sink sink;
  observation

(* Drain one batch of trace records into the cache and the load/store
   counters, applying address translation.  This is the simulation hot
   loop: a tight walk over a flat int array, no per-record closure. *)
let drain_into_cache ~translation ~cache ~counters buf =
  let data = buf.Trace_buffer.data in
  let n = buf.Trace_buffer.len in
  let identity = Translate.is_identity translation in
  let loads = ref 0 and stores = ref 0 in
  for r = 0 to n - 1 do
    let i = r * Trace_buffer.slot_width in
    let kind = Array.unsafe_get data i in
    let addr = Array.unsafe_get data (i + 1) in
    let addr = if identity then addr else Translate.apply translation addr in
    let bytes = Array.unsafe_get data (i + 2) in
    if kind = 0 then begin
      incr loads;
      Cache.read cache ~addr ~bytes
    end
    else begin
      incr stores;
      Cache.write cache ~addr ~bytes
    end
  done;
  counters.Counters.loads <- counters.Counters.loads + !loads;
  counters.Counters.stores <- counters.Counters.stores + !stores

let simulate ?(flush = true) ?(engine = `Compiled) ~machine
    (program : Bw_ir.Ast.program) =
  Bw_obs.Trace.with_span ~cat:"simulate"
    ~attrs:
      [ ("engine", Bw_obs.Trace.Str (engine_name engine));
        ("machine", Bw_obs.Trace.Str machine.Machine.name) ]
    ~result_attrs:(fun r ->
      [ ("loads", Bw_obs.Trace.Int r.counters.Counters.loads);
        ("stores", Bw_obs.Trace.Int r.counters.Counters.stores);
        ("flops", Bw_obs.Trace.Int r.counters.Counters.flops);
        ("memory_bytes", Bw_obs.Trace.Int (Timing.memory_bytes r.cache));
        ("predicted_s", Bw_obs.Trace.Float r.breakdown.Timing.total) ])
    ("simulate:" ^ program.Bw_ir.Ast.prog_name)
  @@ fun () ->
  let layout =
    Layout.assign ~align_bytes:machine.Machine.array_align_bytes
      ~stagger_bytes:machine.Machine.array_stagger_bytes
      (List.filter_map
         (fun d ->
           if Bw_ir.Ast.is_array d then
             Some (d.Bw_ir.Ast.var_name, Bw_ir.Ast.decl_bytes d)
           else None)
         program.Bw_ir.Ast.decls)
  in
  let translation = Machine.fresh_translation machine in
  let cache = Machine.fresh_cache machine in
  let counters = Counters.create () in
  let sink =
    Interp.make_sink
      ~on_trace:(drain_into_cache ~translation ~cache ~counters)
      ()
  in
  let base_of name = Layout.base layout name in
  let observation = run_engine ~engine ~sink ~base_of program in
  counters.Counters.flops <- sink.Interp.flops;
  counters.Counters.int_ops <- sink.Interp.int_ops;
  if flush then Cache.flush cache;
  publish_engine ~engine ~sink ~counters;
  publish_cache cache;
  let breakdown = Timing.predict machine cache counters in
  { machine; observation; counters; cache; breakdown }

let observe ?(engine = `Compiled) program =
  let counters = Counters.create () in
  let sink =
    Interp.make_sink
      ~on_trace:(fun buf ->
        let data = buf.Trace_buffer.data in
        let n = buf.Trace_buffer.len in
        let loads = ref 0 in
        for r = 0 to n - 1 do
          if Array.unsafe_get data (r * Trace_buffer.slot_width) = 0 then incr loads
        done;
        counters.Counters.loads <- counters.Counters.loads + !loads;
        counters.Counters.stores <- counters.Counters.stores + (n - !loads))
      ()
  in
  let observation = run_engine ~engine ~sink program in
  counters.Counters.flops <- sink.Interp.flops;
  counters.Counters.int_ops <- sink.Interp.int_ops;
  publish_engine ~engine ~sink ~counters;
  (observation, counters)

let reuse_profile ?(granularity = 32) ?(engine = `Compiled)
    (program : Bw_ir.Ast.program) =
  let profile = Reuse.create ~granularity () in
  let layout =
    Layout.assign ~stagger_bytes:0
      (List.filter_map
         (fun d ->
           if Bw_ir.Ast.is_array d then
             Some (d.Bw_ir.Ast.var_name, Bw_ir.Ast.decl_bytes d)
           else None)
         program.Bw_ir.Ast.decls)
  in
  let sink =
    Interp.make_sink
      ~on_trace:
        (Trace_buffer.drain ~f:(fun _kind addr _bytes ->
             Reuse.access profile ~addr))
      ()
  in
  ignore
    (run_engine ~engine ~sink
       ~base_of:(fun name -> Layout.base layout name)
       program);
  profile

let effective_bandwidth r =
  Timing.effective_bandwidth r.machine r.cache r.counters

let nominal_bandwidth r =
  (* STREAM-style accounting: 8 bytes read per load, 8 written per store;
     write-allocate fills and conflict refetches are invisible to it *)
  let nominal = 8 * (r.counters.Counters.loads + r.counters.Counters.stores) in
  let t = r.breakdown.Timing.total in
  if t <= 0.0 then 0.0 else float_of_int nominal /. t

let seconds r = r.breakdown.Timing.total

let program_balance r =
  let flops = float_of_int (max 1 r.counters.Counters.flops) in
  let register = float_of_int (Counters.register_bytes r.counters) /. flops in
  let names = Machine.boundary_names r.machine in
  let boundary_values =
    List.init (Cache.level_count r.cache) (fun i ->
        if i = Cache.level_count r.cache - 1 then
          float_of_int (Timing.memory_bytes r.cache) /. flops
        else float_of_int (Cache.boundary_bytes r.cache i) /. flops)
  in
  List.combine names (register :: boundary_values)
