(** Work-stealing domain pool for embarrassingly parallel maps.

    Extracted from the bench harness so both table generation
    ({!Bw_core.Harness}) and multi-machine trace replay
    ({!Run.simulate_many}) fan out over the same machinery: domains
    claim the next unclaimed index from an atomic counter — so one slow
    item does not serialise the rest — and results come back in input
    order, making a parallel map's output indistinguishable from a
    serial one.

    The pool is crash-tolerant in the way the harness needs: a worker
    domain that dies (asynchronous exception, injected fault) leaves its
    claimed-but-unfinished slots to be recomputed on the calling domain
    after the joins, via [retry]. *)

(** [map f items] computes [Array.map f items] across domains.

    [jobs] caps the worker domains (default
    [Domain.recommended_domain_count ()], capped at the item count);
    [jobs <= 1] or fewer than two items runs serially on the calling
    domain with no spawns, no [on_claim] and no [retry].

    [on_claim i] runs on the worker immediately after it claims index
    [i], before [f] — the harness hangs its worker-death fault site
    here.

    [retry i x] recomputes a slot a dead worker claimed but never
    finished (default: [f x] again, on the calling domain).  Exceptions
    from [retry] — and from [f] when running serially — propagate to the
    caller; an exception from [f] on a spawned worker kills only that
    worker, and the slot is retried.

    [f] must be safe to run concurrently with itself on other domains
    (share nothing mutable, or share only atomics). *)
val map :
  ?jobs:int ->
  ?on_claim:(int -> unit) ->
  ?retry:(int -> 'a -> 'b) ->
  ('a -> 'b) ->
  'a array ->
  'b array

(** The worker count [map] uses when [?jobs] is omitted. *)
val default_jobs : unit -> int

(** {1 Persistent task pool}

    [map] spawns domains per call, which is right for batch fan-outs
    but wrong for a long-running service: the serve daemon
    ({!Bw_serve.Server}) keeps one pool alive for its whole lifetime
    and feeds it one task per request.  Worker domains block on a
    condition variable when idle (no spinning), tasks run in FIFO
    order, and completion is delivered through a future the submitter
    awaits — from any domain {e or} systhread, which is how the
    daemon's per-connection threads hand work to compute domains.

    Workers are {e supervised}: a worker domain that dies outside the
    per-task exception confinement (an injected [pool.worker.crash]
    fault, an asynchronous exception) fails only the task it had in
    flight — its future settles with {!Worker_crashed} — and a
    replacement domain is spawned immediately, so a crash degrades one
    request instead of permanently shrinking the pool.  Respawns are
    counted on the [pool.worker.respawns] metric. *)

type t

(** A handle to a submitted task's eventual result. *)
type 'a future

(** The error a future settles with when the worker domain executing it
    died mid-task; the payload is a one-line rendering of the killing
    exception.  Callers that retry should treat it as transient — the
    pool has already been healed. *)
exception Worker_crashed of string

(** [create ?jobs ()] spawns [jobs] worker domains (default
    [default_jobs () - 1], at least 1 — the submitting thread is
    typically doing I/O, not compute). *)
val create : ?jobs:int -> unit -> t

(** Worker domains of this pool. *)
val jobs : t -> int

(** Tasks currently queued (claimed-but-running tasks not included). *)
val pending : t -> int

(** Enqueue [f]; it runs on the first free worker.  An exception from
    [f] is captured into the future, never kills the worker.
    @raise Invalid_argument after {!shutdown}. *)
val submit : t -> (unit -> 'a) -> 'a future

(** Block until the task finishes; safe from any domain or thread, and
    from several waiters at once. *)
val await : 'a future -> ('a, exn) result

(** {!await}, re-raising the task's exception. *)
val await_exn : 'a future -> 'a

(** [run pool f] = [await_exn (submit pool f)]. *)
val run : t -> (unit -> 'a) -> 'a

(** Drain: workers finish every already-queued task, then exit; joins
    them all.  Further {!submit}s raise. *)
val shutdown : t -> unit
