(** Work-stealing domain pool for embarrassingly parallel maps.

    Extracted from the bench harness so both table generation
    ({!Bw_core.Harness}) and multi-machine trace replay
    ({!Run.simulate_many}) fan out over the same machinery: domains
    claim the next unclaimed index from an atomic counter — so one slow
    item does not serialise the rest — and results come back in input
    order, making a parallel map's output indistinguishable from a
    serial one.

    The pool is crash-tolerant in the way the harness needs: a worker
    domain that dies (asynchronous exception, injected fault) leaves its
    claimed-but-unfinished slots to be recomputed on the calling domain
    after the joins, via [retry]. *)

(** [map f items] computes [Array.map f items] across domains.

    [jobs] caps the worker domains (default
    [Domain.recommended_domain_count ()], capped at the item count);
    [jobs <= 1] or fewer than two items runs serially on the calling
    domain with no spawns, no [on_claim] and no [retry].

    [on_claim i] runs on the worker immediately after it claims index
    [i], before [f] — the harness hangs its worker-death fault site
    here.

    [retry i x] recomputes a slot a dead worker claimed but never
    finished (default: [f x] again, on the calling domain).  Exceptions
    from [retry] — and from [f] when running serially — propagate to the
    caller; an exception from [f] on a spawned worker kills only that
    worker, and the slot is retried.

    [f] must be safe to run concurrently with itself on other domains
    (share nothing mutable, or share only atomics). *)
val map :
  ?jobs:int ->
  ?on_claim:(int -> unit) ->
  ?retry:(int -> 'a -> 'b) ->
  ('a -> 'b) ->
  'a array ->
  'b array

(** The worker count [map] uses when [?jobs] is omitted. *)
val default_jobs : unit -> int
