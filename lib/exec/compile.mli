(** Closure-compiled execution engine.

    Compiles a checked program once — resolving every variable to its
    storage cell, every subscript to an offset computation, every
    expression to a monomorphic [unit -> float] or [unit -> int]
    closure — then runs it.  Semantics (including the deterministic
    intrinsics, initial values and the [read()] input stream) are shared
    with {!Interp}; the test suite runs both engines on every workload
    and requires bit-identical observations and event counts.

    Several times faster than the tree-walking interpreter on the large
    Figure 1/8 simulations, which is what the benchmark harness cares
    about. *)

exception Runtime_error of string

(** [run ?sink ?base_of ?input_offset p] — same contract as
    {!Interp.run}. *)
val run :
  ?sink:Interp.sink ->
  ?base_of:(string -> int) ->
  ?input_offset:int ->
  Bw_ir.Ast.program ->
  Interp.observation
