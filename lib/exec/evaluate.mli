(** Tiered program evaluation: one entry point, three price points.

    Every search loop in the repo asks the same question — "how fast is
    this candidate on that machine?" — but not every caller can afford
    the same answer.  The tiers:

    - {b Analytic}: {!Bw_analysis.Predict}'s closed-form model.  No
      execution; microseconds per query regardless of problem size.
      Carries the error envelope documented in EXPERIMENTS.md.
    - {b Reuse_pass}: one reuse-distance pass over a captured reference
      stream ({!Run.reuse_of_capture}), pricing every fully associative
      capacity at once.  Execution cost once per program, then
      milliseconds per machine; blind to associativity conflicts.
    - {b Exact}: the full simulator ({!Run.simulate} / {!Run.replay}).
      Bit-exact counters; pays for every reference on every machine.

    Results carry their {!fidelity} tag so downstream consumers (tables,
    CI gates, search heuristics) can tell a triage estimate from an
    oracle measurement.  Tier usage is counted in {!Bw_obs.Metrics}
    under [evaluate.tier.*]. *)

type fidelity = Analytic | Reuse_pass | Exact

val fidelity_name : fidelity -> string

(** How much the caller is willing to pay for the answer. *)
type budget =
  | Microseconds  (** analytic model only; never executes *)
  | Milliseconds  (** may execute once and run reuse passes *)
  | Unbounded  (** exact simulation *)

(** One evaluation: machine-dependent cost estimates with a fidelity tag. *)
type t = {
  fidelity : fidelity;
  machine_name : string;
  flops : float;
  loads : float;
  stores : float;
  memory_bytes_in : float;
  memory_bytes_out : float;
  seconds : float;
  binding_resource : string;
}

(** Total memory-bus traffic, in + out. *)
val memory_bytes : t -> float

(** [of_program ~budget ~machine p] evaluates [p] at the cheapest tier
    the budget allows: [Microseconds] → Analytic, [Milliseconds] →
    Reuse_pass (executes once to capture), [Unbounded] → Exact. *)
val of_program :
  budget:budget -> machine:Bw_machine.Machine.t -> Bw_ir.Ast.program -> t

(** [of_capture ~budget ~machine c] prices an already-captured stream:
    [Microseconds] and [Milliseconds] → Reuse_pass (no re-execution),
    [Unbounded] → Exact replay. *)
val of_capture :
  budget:budget -> machine:Bw_machine.Machine.t -> Run.capture -> t

(** Wrap an exact simulation result. *)
val of_result : Run.result -> t

val pp : Format.formatter -> t -> unit
