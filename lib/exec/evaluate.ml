type fidelity = Analytic | Reuse_pass | Exact

let fidelity_name = function
  | Analytic -> "analytic"
  | Reuse_pass -> "reuse"
  | Exact -> "exact"

type budget = Microseconds | Milliseconds | Unbounded

type t = {
  fidelity : fidelity;
  machine_name : string;
  flops : float;
  loads : float;
  stores : float;
  memory_bytes_in : float;
  memory_bytes_out : float;
  seconds : float;
  binding_resource : string;
}

let memory_bytes t = t.memory_bytes_in +. t.memory_bytes_out

let tier_analytic = Bw_obs.Metrics.counter "evaluate.tier.analytic"
let tier_reuse = Bw_obs.Metrics.counter "evaluate.tier.reuse"
let tier_exact = Bw_obs.Metrics.counter "evaluate.tier.exact"

let count = function
  | Analytic -> Bw_obs.Metrics.incr tier_analytic
  | Reuse_pass -> Bw_obs.Metrics.incr tier_reuse
  | Exact -> Bw_obs.Metrics.incr tier_exact

let of_result (r : Run.result) =
  count Exact;
  { fidelity = Exact;
    machine_name = r.Run.machine.Bw_machine.Machine.name;
    flops = float_of_int r.Run.counters.Bw_machine.Counters.flops;
    loads = float_of_int r.Run.counters.Bw_machine.Counters.loads;
    stores = float_of_int r.Run.counters.Bw_machine.Counters.stores;
    memory_bytes_in =
      float_of_int (Bw_machine.Cache.memory_bytes_in r.Run.cache);
    memory_bytes_out =
      float_of_int (Bw_machine.Cache.memory_bytes_out r.Run.cache);
    seconds = r.Run.breakdown.Bw_machine.Timing.total;
    binding_resource = r.Run.breakdown.Bw_machine.Timing.binding_resource }

let of_predicted ~(machine : Bw_machine.Machine.t)
    (p : Bw_analysis.Predict.t) =
  count Analytic;
  { fidelity = Analytic;
    machine_name = machine.Bw_machine.Machine.name;
    flops = p.Bw_analysis.Predict.flops;
    loads = p.Bw_analysis.Predict.loads;
    stores = p.Bw_analysis.Predict.stores;
    memory_bytes_in = p.Bw_analysis.Predict.memory_bytes_in;
    memory_bytes_out = p.Bw_analysis.Predict.memory_bytes_out;
    seconds = p.Bw_analysis.Predict.seconds;
    binding_resource = p.Bw_analysis.Predict.binding_resource }

(* Reuse tier: one stack-distance profile of the captured stream at the
   machine's last-level line granularity prices every fully associative
   capacity; the timing model is then evaluated from the per-level miss
   counts.  Writebacks are apportioned by the stream's store fraction —
   the profile does not track dirtiness. *)
let of_reuse ~(machine : Bw_machine.Machine.t) (c : Run.capture) =
  count Reuse_pass;
  let loads = ref 0 and stores = ref 0 in
  Bw_machine.Trace_store.iter c.Run.store ~f:(fun kind _ _ ->
      if kind = Bw_machine.Trace_buffer.kind_load then incr loads
      else incr stores);
  let loads = float_of_int !loads and stores = float_of_int !stores in
  let flops = float_of_int c.Run.captured_flops in
  let caches = machine.Bw_machine.Machine.caches in
  let granularity =
    match List.rev caches with
    | last :: _ -> last.Bw_machine.Cache.line_bytes
    | [] -> 32
  in
  let reuse = Run.reuse_of_capture ~granularity c in
  let write_frac =
    if loads +. stores <= 0.0 then 0.0 else stores /. (loads +. stores)
  in
  let level_lines =
    List.map
      (fun (geo : Bw_machine.Cache.geometry) ->
        let capacity_blocks =
          max 1 (geo.Bw_machine.Cache.size_bytes / granularity)
        in
        let misses =
          float_of_int (Bw_machine.Reuse.misses reuse ~capacity_blocks)
        in
        (* profile blocks are [granularity] bytes; rescale to this
           level's own line size for byte traffic *)
        let scale =
          float_of_int granularity
          /. float_of_int geo.Bw_machine.Cache.line_bytes
        in
        (geo, misses *. scale))
      caches
  in
  let memory_bytes_in, memory_bytes_out =
    match List.rev level_lines with
    | (geo, lines) :: _ ->
      let b = lines *. float_of_int geo.Bw_machine.Cache.line_bytes in
      (b, b *. write_frac)
    | [] -> (loads *. 8.0, stores *. 8.0)
  in
  let cpu = flops /. machine.Bw_machine.Machine.flops_per_sec in
  let register_seconds =
    (loads +. stores) *. 8.0 /. machine.Bw_machine.Machine.register_bandwidth
  in
  let bandwidths = Array.of_list machine.Bw_machine.Machine.cache_bandwidths in
  let n_levels = List.length caches in
  let boundary_times =
    List.mapi
      (fun i (geo, lines) ->
        let linef = float_of_int geo.Bw_machine.Cache.line_bytes in
        let bytes_in = lines *. linef in
        let bytes_out = bytes_in *. write_frac in
        let bytes =
          if i = n_levels - 1 then
            bytes_in
            +. (machine.Bw_machine.Machine.writeback_penalty *. bytes_out)
          else bytes_in +. bytes_out
        in
        let name =
          if i = n_levels - 1 then Printf.sprintf "Mem-L%d" (i + 1)
          else Printf.sprintf "L%d-L%d" (i + 2) (i + 1)
        in
        let bw =
          if i < Array.length bandwidths then bandwidths.(i)
          else machine.Bw_machine.Machine.register_bandwidth
        in
        (name, bytes /. bw))
      level_lines
  in
  let all = ("CPU", cpu) :: ("L1-Reg", register_seconds) :: boundary_times in
  let binding_resource, seconds =
    List.fold_left
      (fun (bn, bt) (n, t) -> if t > bt then (n, t) else (bn, bt))
      ("CPU", cpu) all
  in
  { fidelity = Reuse_pass;
    machine_name = machine.Bw_machine.Machine.name;
    flops;
    loads;
    stores;
    memory_bytes_in;
    memory_bytes_out;
    seconds;
    binding_resource }

let of_capture ~budget ~machine c =
  match budget with
  | Microseconds | Milliseconds -> of_reuse ~machine c
  | Unbounded -> of_result (Run.replay ~machine c)

let of_program ~budget ~machine p =
  match budget with
  | Microseconds ->
    of_predicted ~machine (Bw_analysis.Predict.predict ~machine p)
  | Milliseconds -> of_reuse ~machine (Run.capture p)
  | Unbounded -> of_result (Run.simulate ~machine p)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>[%s] %s: %.3e flops, %.3e loads, %.3e stores@,\
     memory %.3e B in / %.3e B out, %.6f s (bound by %s)@]"
    (fidelity_name t.fidelity) t.machine_name t.flops t.loads t.stores
    t.memory_bytes_in t.memory_bytes_out t.seconds t.binding_resource
