(** End-to-end simulation of an IR program on a machine model: lay out the
    arrays, interpret the program streaming its memory events through the
    machine's address translation into its cache hierarchy, and evaluate
    the timing model. *)

type result = {
  machine : Bw_machine.Machine.t;
  observation : Interp.observation;
  counters : Bw_machine.Counters.t;
  cache : Bw_machine.Cache.t;
  breakdown : Bw_machine.Timing.breakdown;
}

(** [simulate ~machine program] runs the full pipeline.

    [flush] (default [true]) writes dirty cache lines back at the end of
    the run before evaluating the timing model, charging the program for
    results that must reach memory.

    [engine] picks the executor: the closure {!Compile}r (default; same
    semantics, several times faster) or the tree-walking {!Interp}reter.
    The test suite keeps them bit-identical. *)
val simulate :
  ?flush:bool ->
  ?engine:[ `Compiled | `Interpreted ] ->
  machine:Bw_machine.Machine.t ->
  Bw_ir.Ast.program ->
  result

(** Execute for semantics only — no machine, no cache — returning the
    observation and the CPU-side counters (flops/loads/stores).
    [engine] as in {!simulate} (default [`Compiled]). *)
val observe :
  ?engine:[ `Compiled | `Interpreted ] ->
  Bw_ir.Ast.program ->
  Interp.observation * Bw_machine.Counters.t

(** Effective memory bandwidth of the run, in bytes/second: actual
    simulated memory traffic over predicted time. *)
val effective_bandwidth : result -> float

(** The bandwidth a measurement without hardware counters reports
    (Figure 3's methodology): the program's nominal traffic — 8 bytes per
    load and 8 per store, STREAM-style — divided by
    predicted time.  Conflict misses inflate the denominator but not the
    numerator, producing the paper's 3w6r dip. *)
val nominal_bandwidth : result -> float

(** Predicted wall-clock seconds of the run. *)
val seconds : result -> float

(** Program balance: bytes per flop at each hierarchy boundary, outermost
    first, e.g. [("L1-Reg", 6.4); ("L2-L1", 5.1); ("Mem-L2", 5.2)]. *)
val program_balance : result -> (string * float) list

(** Profile the program's reuse distances at the given block granularity
    (no cache model involved; one pass over the address stream).  The
    resulting curve predicts the miss ratio of any fully associative LRU
    cache — see {!Bw_machine.Reuse}. *)
val reuse_profile :
  ?granularity:int ->
  ?engine:[ `Compiled | `Interpreted ] ->
  Bw_ir.Ast.program ->
  Bw_machine.Reuse.t
