(** End-to-end simulation of an IR program on a machine model: lay out the
    arrays, interpret the program streaming its memory events through the
    machine's address translation into its cache hierarchy, and evaluate
    the timing model. *)

type result = {
  machine : Bw_machine.Machine.t;
  observation : Interp.observation;
  counters : Bw_machine.Counters.t;
  cache : Bw_machine.Cache.t;
  breakdown : Bw_machine.Timing.breakdown;
}

(** [simulate ~machine program] runs the full pipeline.

    [flush] (default [true]) writes dirty cache lines back at the end of
    the run before evaluating the timing model, charging the program for
    results that must reach memory.

    [engine] picks the executor: the closure {!Compile}r (default; same
    semantics, several times faster) or the tree-walking {!Interp}reter.
    The test suite keeps them bit-identical. *)
val simulate :
  ?flush:bool ->
  ?engine:[ `Compiled | `Interpreted ] ->
  machine:Bw_machine.Machine.t ->
  Bw_ir.Ast.program ->
  result

(** A captured execution: the program's full memory-reference stream,
    delta/varint-encoded in a {!Bw_machine.Trace_store}, plus everything
    machine-independent the simulation pipeline needs (observation,
    flop/int-op tallies, array sizes).  Capturing runs the execution
    engine {e once}; each {!replay} then evaluates the stream against
    one machine model without re-executing the program.

    Captured addresses live in a canonical space — array [i] at base
    [(i + 1) lsl shift] — so replay re-bases them onto the target
    machine's layout (alignment, stagger) with one shift/mask and then
    applies that machine's page translation, making one capture valid
    for machines that differ in caches, write policy, translation and
    layout alike. *)
type capture = {
  captured_program : Bw_ir.Ast.program;
  captured_engine : [ `Compiled | `Interpreted ];
  captured_observation : Interp.observation;
  captured_flops : int;
  captured_int_ops : int;
  arrays : (string * int) list;  (** (name, bytes), declaration order *)
  shift : int;  (** canonical base shift: array [i] at [(i+1) lsl shift] *)
  store : Bw_machine.Trace_store.t;
}

(** Execute [program] once and capture its memory-reference stream.
    [engine] as in {!simulate} (default [`Compiled]). *)
val capture :
  ?engine:[ `Compiled | `Interpreted ] -> Bw_ir.Ast.program -> capture

(** [replay ~machine c] evaluates the captured stream on [machine]:
    fresh cache, fresh translation, same record order.  The result is
    bit-identical to [simulate ~machine] of the captured program with
    the captured engine — every counter, per-level cache statistic,
    memory line count and timing term — a property the test suite and
    the [bwc simulate --check] CI smoke enforce.  [flush] as in
    {!simulate}. *)
val replay : ?flush:bool -> machine:Bw_machine.Machine.t -> capture -> result

(** [replay_many ~machines c] replays on each machine, fanning out
    across domains ({!Pool}; [jobs] caps the workers).  Results are in
    [machines] order and bit-identical to serial {!replay} calls. *)
val replay_many :
  ?jobs:int ->
  ?flush:bool ->
  machines:Bw_machine.Machine.t list ->
  capture ->
  result list

(** [simulate_many ~machines program] = {!capture} once, then
    {!replay_many}: the program executes once however many machines are
    evaluated, and each result is bit-identical to a direct
    [simulate ~machine]. *)
val simulate_many :
  ?jobs:int ->
  ?flush:bool ->
  ?engine:[ `Compiled | `Interpreted ] ->
  machines:Bw_machine.Machine.t list ->
  Bw_ir.Ast.program ->
  result list

(** Reuse-distance profile of a captured stream (loads and stores alike),
    at [granularity]-byte blocks (default 32) — one pass over the store,
    no cache model, predicting the miss count of every fully associative
    LRU capacity at once (see {!Bw_machine.Reuse}).  Canonical bases are
    at least page-aligned, so the block partition matches a packed
    layout's for any real granularity. *)
val reuse_of_capture : ?granularity:int -> capture -> Bw_machine.Reuse.t

(** Structural equality of two simulation results: machine name, all
    counters, per-level cache statistics, memory line counts, the full
    timing breakdown, and the observation.  This is the bit-identity
    oracle used by the replay tests and [bwc simulate --check]. *)
val equal_result : result -> result -> bool

(** Execute for semantics only — no machine, no cache — returning the
    observation and the CPU-side counters (flops/loads/stores).
    [engine] as in {!simulate} (default [`Compiled]). *)
val observe :
  ?engine:[ `Compiled | `Interpreted ] ->
  Bw_ir.Ast.program ->
  Interp.observation * Bw_machine.Counters.t

(** Effective memory bandwidth of the run, in bytes/second: actual
    simulated memory traffic over predicted time. *)
val effective_bandwidth : result -> float

(** The bandwidth a measurement without hardware counters reports
    (Figure 3's methodology): the program's nominal traffic — 8 bytes per
    load and 8 per store, STREAM-style — divided by
    predicted time.  Conflict misses inflate the denominator but not the
    numerator, producing the paper's 3w6r dip. *)
val nominal_bandwidth : result -> float

(** Predicted wall-clock seconds of the run. *)
val seconds : result -> float

(** Program balance: bytes per flop at each hierarchy boundary, outermost
    first, e.g. [("L1-Reg", 6.4); ("L2-L1", 5.1); ("Mem-L2", 5.2)]. *)
val program_balance : result -> (string * float) list

(** Profile the program's reuse distances at the given block granularity
    (no cache model involved; one pass over the address stream).  The
    resulting curve predicts the miss ratio of any fully associative LRU
    cache — see {!Bw_machine.Reuse}. *)
val reuse_profile :
  ?granularity:int ->
  ?engine:[ `Compiled | `Interpreted ] ->
  Bw_ir.Ast.program ->
  Bw_machine.Reuse.t
