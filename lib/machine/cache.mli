(** Trace-driven multi-level cache simulator.

    Every level is set-associative with true-LRU replacement and a
    write-back, write-allocate policy — the organisation of the MIPS R10K
    and PA-8000 caches the paper measures.  A miss at level [i] fetches the
    line from level [i+1]; evicting a dirty line writes it back to level
    [i+1].  Misses and write-backs of the last level are charged to main
    memory.

    The simulator is exact, not sampled: the per-level hit/miss/write-back
    counts are what the paper reads from hardware counters, so the program
    balance computed from them is deterministic. *)

type geometry = {
  size_bytes : int;
  line_bytes : int;  (** power of two *)
  associativity : int;  (** ways per set; >= 1.  1 = direct-mapped *)
}

(** Raised by {!create} when a geometry is inconsistent (sizes not
    divisible, non-power-of-two line, non-positive fields). *)
exception Bad_geometry of string

type level_stats = {
  mutable reads : int;  (** read accesses arriving at this level *)
  mutable writes : int;  (** write accesses arriving at this level *)
  mutable read_misses : int;
  mutable write_misses : int;
  mutable writebacks : int;  (** dirty evictions passed to the next level *)
}

type t

(** How stores are handled, uniformly across the hierarchy. *)
type write_policy =
  | Write_back  (** write-allocate, dirty lines written back on eviction
                    (the default; what R10K and PA-8000 do) *)
  | Write_through
      (** no-write-allocate: stores update a present line and are always
          forwarded to the next level; missing stores do not fetch *)

(** [create geometries] builds a hierarchy; the first geometry is the
    level closest to the CPU. The list may be empty (every access then
    goes straight to memory).

    [fast] (default [true]) selects the optimised access path: shift/mask
    address splitting for power-of-two geometries, a per-level hot-line
    memo that short-circuits consecutive accesses to the same line, and
    an MRU-way probe ahead of the associativity scan.  [~fast:false]
    keeps the straightforward div/mod reference model.  The two are
    bit-identical in every counter (hits, misses, writebacks, memory
    lines) — the property is enforced by the test suite — so [fast]
    only trades simulation speed. *)
val create : ?write_policy:write_policy -> ?fast:bool -> geometry list -> t

val level_count : t -> int
val geometry : t -> int -> geometry

(** [read t ~addr ~bytes] simulates a CPU load of [bytes] bytes at [addr];
    accesses spanning multiple lines touch each line once. *)
val read : t -> addr:int -> bytes:int -> unit

(** [write t ~addr ~bytes] simulates a CPU store (write-allocate:
    a missing line is fetched before being dirtied). *)
val write : t -> addr:int -> bytes:int -> unit

(** Statistics of one level ([0] = closest to CPU).  Live view: the
    record mutates as simulation proceeds. *)
val stats : t -> int -> level_stats

(** Fresh copies of every level's statistics, CPU-closest first — safe
    to hold across further simulation (feeds the observability layer's
    [cache.L*] metrics). *)
val stats_snapshot : t -> level_stats list

(** Lines fetched from main memory (last-level read+write misses). *)
val memory_lines_in : t -> int

(** Lines written back to main memory. *)
val memory_lines_out : t -> int

(** Bytes crossing the memory bus in each direction. *)
val memory_bytes_in : t -> int

val memory_bytes_out : t -> int

(** [boundary_bytes t i] is the total traffic in bytes between level [i]
    and the next level down (or memory for the last level):
    [(read_misses + write_misses + writebacks) * line_bytes]. *)
val boundary_bytes : t -> int -> int

(** Write back every dirty line, charging the traffic to the levels
    below.  Call at most once, at the end of a run, when modelling
    programs whose results must reach memory. *)
val flush : t -> unit

(** Reset all stats and invalidate all lines. *)
val clear : t -> unit
