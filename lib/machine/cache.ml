type geometry = { size_bytes : int; line_bytes : int; associativity : int }

exception Bad_geometry of string

type level_stats = {
  mutable reads : int;
  mutable writes : int;
  mutable read_misses : int;
  mutable write_misses : int;
  mutable writebacks : int;
}

(* Per-slot state is organised for the locality of the simulator itself:
   a 4 MB level model is 32 K slots, and a simulated access that touches
   tag, timestamp and recency state in three separate arrays costs three
   real cache misses per probe.  Instead the tag and the LRU timestamp
   of a slot are interleaved in one [meta] array (tag at [2*slot],
   last_use at [2*slot + 1]), so probing a whole set walks consecutive
   words of one or two host cache lines.  A slot is invalid iff its tag
   is -1 (real tags are always >= 0), and dirty bits live in a Bytes.t
   (1 byte per slot instead of a boxed-bool word). *)
type level = {
  geometry : geometry;
  n_sets : int;
  (* fast-path geometry: line_bytes is always a power of two, so line
     extraction is a shift; set/tag splits use masks only when n_sets is
     also a power of two (true for every shipped machine model) *)
  line_shift : int;
  pow2_sets : bool;
  set_mask : int; (* n_sets - 1, meaningful iff pow2_sets *)
  set_shift : int; (* log2 n_sets, meaningful iff pow2_sets *)
  (* way-major: slot = set * associativity + way; see layout note above *)
  meta : int array;
  dirty : Bytes.t; (* '\001' = dirty *)
  (* hot-line memo: the line address and slot of the last access at this
     level, or -1.  Stride-1 traces re-touch the same line line_bytes/8
     times in a row; the memo turns those repeats into O(1) hits that
     bypass the set/tag split and the LRU bookkeeping entirely. *)
  mutable hot_line : int;
  mutable hot_slot : int;
  stats : level_stats;
}

type write_policy = Write_back | Write_through

type t = {
  levels : level array;
  policy : write_policy;
  fast : bool;
  top_shift : int; (* log2 of the top level's line size (3 if uncached) *)
  (* mirror of level 0's hot-line memo and hot record fields, kept in
     this record so the overwhelmingly common single-line repeat access
     touches one cache line instead of chasing levels.(0): for an
     uncached hierarchy hot0_line stays -1 (addresses are >= 0, so it
     never matches) and the other two mirrors are dummies *)
  mutable hot0_line : int;
  mutable hot0_slot : int;
  l0_stats : level_stats;
  l0_dirty : Bytes.t;
  mutable clock : int;
  mutable mem_lines_in : int;
  mutable mem_lines_out : int;
  mem_line_bytes : int; (* line size used to charge memory traffic *)
}

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let log2_exact x =
  let rec go acc x = if x <= 1 then acc else go (acc + 1) (x lsr 1) in
  go 0 x

let fresh_stats () =
  { reads = 0; writes = 0; read_misses = 0; write_misses = 0; writebacks = 0 }

let clean = Char.chr 0
let dirty_mark = Char.chr 1

(* meta accessors; the timestamp of a slot is only ever read after its
   tag has been installed, so initialising everything to -1 is fine *)
let[@inline] tag_of level slot = Array.unsafe_get level.meta (2 * slot)

let make_level g =
  if g.size_bytes <= 0 || g.line_bytes <= 0 || g.associativity <= 0 then
    raise (Bad_geometry "non-positive cache parameter");
  if not (is_power_of_two g.line_bytes) then
    raise (Bad_geometry "line size must be a power of two");
  if g.size_bytes mod (g.line_bytes * g.associativity) <> 0 then
    raise (Bad_geometry "size not divisible by line * associativity");
  let n_sets = g.size_bytes / (g.line_bytes * g.associativity) in
  let slots = n_sets * g.associativity in
  let pow2_sets = is_power_of_two n_sets in
  { geometry = g;
    n_sets;
    line_shift = log2_exact g.line_bytes;
    pow2_sets;
    set_mask = (if pow2_sets then n_sets - 1 else 0);
    set_shift = (if pow2_sets then log2_exact n_sets else 0);
    meta = Array.make (2 * slots) (-1);
    dirty = Bytes.make slots clean;
    hot_line = -1;
    hot_slot = -1;
    stats = fresh_stats () }

let create ?(write_policy = Write_back) ?(fast = true) geometries =
  let levels = Array.of_list (List.map make_level geometries) in
  let mem_line_bytes =
    match Array.length levels with
    | 0 -> 8 (* uncached machine: charge memory per 8-byte word *)
    | n -> levels.(n - 1).geometry.line_bytes
  in
  let top_shift =
    if Array.length levels = 0 then 3 else levels.(0).line_shift
  in
  let l0_stats =
    if Array.length levels = 0 then fresh_stats () else levels.(0).stats
  in
  let l0_dirty =
    if Array.length levels = 0 then Bytes.make 1 clean else levels.(0).dirty
  in
  { levels; policy = write_policy; fast; top_shift;
    hot0_line = -1; hot0_slot = -1; l0_stats; l0_dirty;
    clock = 0; mem_lines_in = 0; mem_lines_out = 0; mem_line_bytes }

let level_count t = Array.length t.levels

let geometry t i =
  if i < 0 || i >= Array.length t.levels then invalid_arg "Cache.geometry";
  t.levels.(i).geometry

let stats t i =
  if i < 0 || i >= Array.length t.levels then invalid_arg "Cache.stats";
  t.levels.(i).stats

let stats_snapshot t =
  Array.to_list t.levels
  |> List.map (fun level ->
         let s = level.stats in
         { reads = s.reads;
           writes = s.writes;
           read_misses = s.read_misses;
           write_misses = s.write_misses;
           writebacks = s.writebacks })

(* --- reference model ----------------------------------------------------- *)

(* The straightforward div/mod + linear-scan implementation.  The fast
   path below must stay bit-identical to it in every counter; the
   equivalence is property-tested in test/test_cache_equiv.ml. *)
let rec access_ref t i ~byte_addr ~is_write =
  if i >= Array.length t.levels then begin
    (* main memory *)
    if is_write then t.mem_lines_out <- t.mem_lines_out + 1
    else t.mem_lines_in <- t.mem_lines_in + 1
  end
  else begin
    let level = t.levels.(i) in
    let g = level.geometry in
    let meta = level.meta in
    let line_addr = byte_addr / g.line_bytes in
    let set = line_addr mod level.n_sets in
    let tag = line_addr / level.n_sets in
    let s = level.stats in
    if is_write then s.writes <- s.writes + 1 else s.reads <- s.reads + 1;
    t.clock <- t.clock + 1;
    let base = set * g.associativity in
    (* look for a hit (tags are >= 0, so invalid slots never match) *)
    let hit_way = ref (-1) in
    for w = 0 to g.associativity - 1 do
      if meta.(2 * (base + w)) = tag then hit_way := w
    done;
    if !hit_way >= 0 then begin
      let slot = base + !hit_way in
      meta.((2 * slot) + 1) <- t.clock;
      match t.policy with
      | Write_back -> if is_write then Bytes.set level.dirty slot dirty_mark
      | Write_through ->
        (* hit updates the line; the store still goes down *)
        if is_write then begin
          s.writebacks <- s.writebacks + 1;
          access_ref t (i + 1) ~byte_addr ~is_write:true
        end
    end
    else if t.policy = Write_through && is_write then begin
      (* no-write-allocate: count the miss, forward the store *)
      s.write_misses <- s.write_misses + 1;
      s.writebacks <- s.writebacks + 1;
      access_ref t (i + 1) ~byte_addr ~is_write:true
    end
    else begin
      if is_write then s.write_misses <- s.write_misses + 1
      else s.read_misses <- s.read_misses + 1;
      (* choose victim: invalid way if any, else LRU *)
      let victim = ref (-1) in
      for w = 0 to g.associativity - 1 do
        if !victim < 0 && meta.(2 * (base + w)) < 0 then victim := w
      done;
      if !victim < 0 then begin
        let best = ref 0 in
        for w = 1 to g.associativity - 1 do
          if meta.((2 * (base + w)) + 1) < meta.((2 * (base + !best)) + 1)
          then best := w
        done;
        victim := !best
      end;
      let slot = base + !victim in
      if meta.(2 * slot) >= 0 && Bytes.get level.dirty slot = dirty_mark
      then begin
        s.writebacks <- s.writebacks + 1;
        let victim_line = (meta.(2 * slot) * level.n_sets) + set in
        access_ref t (i + 1) ~byte_addr:(victim_line * g.line_bytes)
          ~is_write:true
      end;
      (* fetch the line from below (write-allocate on stores) *)
      access_ref t (i + 1) ~byte_addr ~is_write:false;
      meta.(2 * slot) <- tag;
      Bytes.set level.dirty slot (if is_write then dirty_mark else clean);
      meta.((2 * slot) + 1) <- t.clock
    end
  end

(* --- fast path ----------------------------------------------------------- *)

(* Same observable behaviour as [access_ref], with two structural changes
   that cannot alter any counter:

   - power-of-two set/tag splits use shifts and masks instead of / and
     mod (line splits always do: line sizes are powers of two by
     construction);
   - the hot-line memo short-circuits an access to the same line as the
     previous access at this level.  That line is necessarily resident
     and already the most recently used entry of its set, so skipping
     the clock tick and the last_use refresh preserves the relative LRU
     order every future victim choice is based on. *)
let rec access_fast t i ~byte_addr ~is_write =
  if i >= Array.length t.levels then begin
    if is_write then t.mem_lines_out <- t.mem_lines_out + 1
    else t.mem_lines_in <- t.mem_lines_in + 1
  end
  else begin
    let level = Array.unsafe_get t.levels i in
    let line_addr = byte_addr lsr level.line_shift in
    let s = level.stats in
    if is_write then s.writes <- s.writes + 1 else s.reads <- s.reads + 1;
    if line_addr = level.hot_line then begin
      if is_write then begin
        match t.policy with
        | Write_back -> Bytes.unsafe_set level.dirty level.hot_slot dirty_mark
        | Write_through ->
          s.writebacks <- s.writebacks + 1;
          access_fast t (i + 1) ~byte_addr ~is_write:true
      end
    end
    else access_cold t level i ~byte_addr ~line_addr ~is_write
  end

(* the not-hot-line part of an access, kept out of [access_fast] so the
   memo hit path stays small *)
and access_cold t level i ~byte_addr ~line_addr ~is_write =
  let s = level.stats in
  let set =
    if level.pow2_sets then line_addr land level.set_mask
    else line_addr mod level.n_sets
  in
  let tag =
    if level.pow2_sets then line_addr lsr level.set_shift
    else line_addr / level.n_sets
  in
  t.clock <- t.clock + 1;
  let g = level.geometry in
  let assoc = g.associativity in
  let mbase = 2 * set * assoc in
  let meta = level.meta in
  (* 1- and 2-way sets (every shipped model) probe without a loop *)
  let hit_way =
    if assoc = 2 then
      if Array.unsafe_get meta mbase = tag then 0
      else if Array.unsafe_get meta (mbase + 2) = tag then 1
      else -1
    else if assoc = 1 then
      if Array.unsafe_get meta mbase = tag then 0 else -1
    else begin
      let found = ref (-1) in
      for w = 0 to assoc - 1 do
        if Array.unsafe_get meta (mbase + (2 * w)) = tag then found := w
      done;
      !found
    end
  in
  if hit_way >= 0 then begin
    let slot = (set * assoc) + hit_way in
    Array.unsafe_set meta (mbase + (2 * hit_way) + 1) t.clock;
    level.hot_line <- line_addr;
    level.hot_slot <- slot;
    if i = 0 then begin
      t.hot0_line <- line_addr;
      t.hot0_slot <- slot
    end;
    match t.policy with
    | Write_back ->
      if is_write then Bytes.unsafe_set level.dirty slot dirty_mark
    | Write_through ->
      if is_write then begin
        s.writebacks <- s.writebacks + 1;
        access_fast t (i + 1) ~byte_addr ~is_write:true
      end
  end
  else if t.policy = Write_through && is_write then begin
    (* no-write-allocate: the hot line (if any) is untouched *)
    s.write_misses <- s.write_misses + 1;
    s.writebacks <- s.writebacks + 1;
    access_fast t (i + 1) ~byte_addr ~is_write:true
  end
  else begin
    if is_write then s.write_misses <- s.write_misses + 1
    else s.read_misses <- s.read_misses + 1;
    let victim =
      if assoc = 1 then 0
      else if assoc = 2 then
        if Array.unsafe_get meta mbase < 0 then 0
        else if Array.unsafe_get meta (mbase + 2) < 0 then 1
        else if
          Array.unsafe_get meta (mbase + 3) < Array.unsafe_get meta (mbase + 1)
        then 1
        else 0
      else begin
        let victim = ref (-1) in
        for w = 0 to assoc - 1 do
          if !victim < 0 && Array.unsafe_get meta (mbase + (2 * w)) < 0 then
            victim := w
        done;
        if !victim < 0 then begin
          let best = ref 0 in
          for w = 1 to assoc - 1 do
            if
              Array.unsafe_get meta (mbase + (2 * w) + 1)
              < Array.unsafe_get meta (mbase + (2 * !best) + 1)
            then best := w
          done;
          victim := !best
        end;
        !victim
      end
    in
    let slot = (set * assoc) + victim in
    let mslot = mbase + (2 * victim) in
    let old_tag = Array.unsafe_get meta mslot in
    let next_is_mem = i + 1 >= Array.length t.levels in
    if old_tag >= 0 && Bytes.unsafe_get level.dirty slot = dirty_mark
    then begin
      s.writebacks <- s.writebacks + 1;
      if next_is_mem then t.mem_lines_out <- t.mem_lines_out + 1
      else begin
        let victim_line = (old_tag * level.n_sets) + set in
        access_fast t (i + 1) ~byte_addr:(victim_line lsl level.line_shift)
          ~is_write:true
      end
    end;
    if next_is_mem then t.mem_lines_in <- t.mem_lines_in + 1
    else access_fast t (i + 1) ~byte_addr ~is_write:false;
    Array.unsafe_set meta mslot tag;
    Bytes.unsafe_set level.dirty slot (if is_write then dirty_mark else clean);
    Array.unsafe_set meta (mslot + 1) t.clock;
    level.hot_line <- line_addr;
    level.hot_slot <- slot;
    if i = 0 then begin
      t.hot0_line <- line_addr;
      t.hot0_slot <- slot
    end
  end

let access_line t i ~byte_addr ~is_write =
  if t.fast then access_fast t i ~byte_addr ~is_write
  else access_ref t i ~byte_addr ~is_write

let check_access ~addr ~bytes =
  if bytes <= 0 then invalid_arg "Cache: non-positive access size";
  if addr < 0 then invalid_arg "Cache: negative address"

(* read/write iterate the touched lines inline (no closure per access).
   The single-line case — nearly every access: an 8-byte word inside a
   >= 32-byte line — probes the L1 hot-line mirror in [t] without even
   entering the recursion; the entry points are kept tiny so they can be
   inlined at call sites.

   The mirror test is safe before argument validation: [hot0_line] only
   ever holds line numbers of validated (non-negative) addresses, and a
   negative [addr] shifts (logically) to a line number no valid address
   can produce, so invalid arguments always fall through to the cold
   entry and its [check_access].  When [t.fast] is false the mirror
   stays -1 and likewise never matches. *)

let read_cold t ~addr ~bytes =
  check_access ~addr ~bytes;
  let sh = t.top_shift in
  let first = addr lsr sh and last = (addr + bytes - 1) lsr sh in
  if t.fast then begin
    if first = last then
      access_fast t 0 ~byte_addr:(first lsl sh) ~is_write:false
    else
      for l = first to last do
        access_fast t 0 ~byte_addr:(l lsl sh) ~is_write:false
      done
  end
  else
    for l = first to last do
      access_ref t 0 ~byte_addr:(l lsl sh) ~is_write:false
    done

let[@inline] read t ~addr ~bytes =
  let sh = t.top_shift in
  let first = addr lsr sh in
  if
    first = t.hot0_line
    && first = (addr + bytes - 1) lsr sh
    && bytes > 0
  then begin
    let s = t.l0_stats in
    s.reads <- s.reads + 1
  end
  else read_cold t ~addr ~bytes

let write_cold t ~addr ~bytes =
  check_access ~addr ~bytes;
  let sh = t.top_shift in
  let first = addr lsr sh and last = (addr + bytes - 1) lsr sh in
  if t.fast then begin
    if first = last then
      access_fast t 0 ~byte_addr:(first lsl sh) ~is_write:true
    else
      for l = first to last do
        access_fast t 0 ~byte_addr:(l lsl sh) ~is_write:true
      done
  end
  else
    for l = first to last do
      access_ref t 0 ~byte_addr:(l lsl sh) ~is_write:true
    done

let[@inline] write t ~addr ~bytes =
  let sh = t.top_shift in
  let first = addr lsr sh in
  if
    first = t.hot0_line
    && t.policy = Write_back
    && first = (addr + bytes - 1) lsr sh
    && bytes > 0
  then begin
    let s = t.l0_stats in
    s.writes <- s.writes + 1;
    Bytes.unsafe_set t.l0_dirty t.hot0_slot dirty_mark
  end
  else write_cold t ~addr ~bytes

let memory_lines_in t = t.mem_lines_in
let memory_lines_out t = t.mem_lines_out
let memory_bytes_in t = t.mem_lines_in * t.mem_line_bytes
let memory_bytes_out t = t.mem_lines_out * t.mem_line_bytes

let boundary_bytes t i =
  if i < 0 || i >= Array.length t.levels then invalid_arg "Cache.boundary_bytes";
  let s = t.levels.(i).stats in
  (s.read_misses + s.write_misses + s.writebacks)
  * t.levels.(i).geometry.line_bytes

let flush t =
  (* Evict dirty lines top-down so L1 dirt propagates through L2.  The
     dirty bytes are scanned a 64-bit word at a time: flush visits every
     slot of every level — tens of thousands on a multi-megabyte L2
     model — and almost all of them are clean. *)
  for i = 0 to Array.length t.levels - 1 do
    let level = t.levels.(i) in
    let g = level.geometry in
    let slots = Bytes.length level.dirty in
    let dirty = level.dirty in
    let flush_slot slot =
      if Bytes.unsafe_get dirty slot = dirty_mark && tag_of level slot >= 0
      then begin
        let set = slot / g.associativity in
        let line_addr = (tag_of level slot * level.n_sets) + set in
        level.stats.writebacks <- level.stats.writebacks + 1;
        Bytes.unsafe_set dirty slot clean;
        access_line t (i + 1) ~byte_addr:(line_addr * g.line_bytes)
          ~is_write:true
      end
    in
    let words = slots / 8 in
    for w = 0 to words - 1 do
      if Bytes.get_int64_le dirty (w * 8) <> 0L then
        for slot = w * 8 to (w * 8) + 7 do
          flush_slot slot
        done
    done;
    for slot = words * 8 to slots - 1 do
      flush_slot slot
    done
  done

let clear t =
  t.clock <- 0;
  t.mem_lines_in <- 0;
  t.mem_lines_out <- 0;
  t.hot0_line <- -1;
  t.hot0_slot <- -1;
  Array.iter
    (fun level ->
      Array.fill level.meta 0 (Array.length level.meta) (-1);
      Bytes.fill level.dirty 0 (Bytes.length level.dirty) clean;
      level.hot_line <- -1;
      level.hot_slot <- -1;
      let s = level.stats in
      s.reads <- 0;
      s.writes <- 0;
      s.read_misses <- 0;
      s.write_misses <- 0;
      s.writebacks <- 0)
    t.levels
