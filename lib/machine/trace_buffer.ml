(* Flat ring buffer of memory-reference records.  See trace_buffer.mli. *)

let slot_width = 3

type t = {
  data : int array; (* slot_width ints per record: kind, addr, bytes *)
  capacity : int; (* in records *)
  mutable len : int;
  mutable on_full : t -> unit;
  mutable flushes : int;
}

let kind_load = 0
let kind_store = 1

(* Default sized so the flat array (capacity * 3 words) stays resident in
   the host CPU's L1/L2 while still amortising the drain call: bigger
   buffers measurably slow the simulator down because every record write
   becomes a streaming store to cold memory. *)
let create ?(capacity = 1_024) ~on_full () =
  if capacity <= 0 then invalid_arg "Trace_buffer.create: capacity <= 0";
  { data = Array.make (capacity * slot_width) 0;
    capacity;
    len = 0;
    on_full;
    flushes = 0 }

let set_on_full t f = t.on_full <- f
let length t = t.len
let reset t = t.len <- 0

let[@inline] record t kind addr bytes =
  if t.len = t.capacity then begin
    t.flushes <- t.flushes + 1;
    t.on_full t;
    t.len <- 0
  end;
  let i = t.len * slot_width in
  let data = t.data in
  Array.unsafe_set data i kind;
  Array.unsafe_set data (i + 1) addr;
  Array.unsafe_set data (i + 2) bytes;
  t.len <- t.len + 1

let[@inline] load t ~addr ~bytes = record t kind_load addr bytes
let[@inline] store t ~addr ~bytes = record t kind_store addr bytes

let iter t ~f =
  let data = t.data in
  for r = 0 to t.len - 1 do
    let i = r * slot_width in
    f
      (Array.unsafe_get data i)
      (Array.unsafe_get data (i + 1))
      (Array.unsafe_get data (i + 2))
  done

let drain t ~f =
  iter t ~f;
  t.len <- 0

let flush t =
  if t.len > 0 then begin
    t.flushes <- t.flushes + 1;
    t.on_full t;
    t.len <- 0
  end

let flushes t = t.flushes
