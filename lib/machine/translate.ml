type kind =
  | Identity
  | Hashed of {
      page_bytes : int;
      seed : int;
      table : (int, int) Hashtbl.t;
      used : (int, unit) Hashtbl.t;
    }

type t = kind ref

let identity = ref Identity

let hashed ~page_bytes ~seed =
  if page_bytes <= 0 || page_bytes land (page_bytes - 1) <> 0 then
    invalid_arg "Translate.hashed: page size must be a positive power of two";
  ref
    (Hashed
       { page_bytes; seed; table = Hashtbl.create 4096; used = Hashtbl.create 4096 })

(* SplitMix-style mixer; cheap and well distributed within 63-bit ints. *)
let mix seed x =
  let z = ref (x + (seed * 0x9e3779b9) + 0x7f4a7c15) in
  z := (!z lxor (!z lsr 30)) * 0x1ce4e5b9bf58476d;
  z := (!z lxor (!z lsr 27)) * 0x133111eb94d049bb;
  (!z lxor (!z lsr 31)) land max_int

let is_identity t = !t = Identity

let apply t addr =
  match !t with
  | Identity -> addr
  | Hashed { page_bytes; seed; table; used } ->
    let vpage = addr / page_bytes in
    let offset = addr mod page_bytes in
    let ppage =
      match Hashtbl.find_opt table vpage with
      | Some p -> p
      | None ->
        (* Draw pseudo-random pages until an unused one appears; the
           physical space is 2^40 pages, so retries are negligible. *)
        let rec draw salt =
          let candidate = mix seed (vpage + (salt * 1_000_003)) land ((1 lsl 40) - 1) in
          if Hashtbl.mem used candidate then draw (salt + 1) else candidate
        in
        let p = draw 0 in
        Hashtbl.add table vpage p;
        Hashtbl.add used p ();
        p
    in
    (ppage * page_bytes) + offset

let reset t =
  match !t with
  | Identity -> ()
  | Hashed { table; used; _ } ->
    Hashtbl.reset table;
    Hashtbl.reset used
