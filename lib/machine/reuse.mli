(** Reuse-distance (LRU stack distance) analysis.

    The reuse distance of an access is the number of {e distinct} blocks
    touched since the previous access to the same block.  Its histogram
    characterises a program's locality independently of any particular
    cache: a fully associative LRU cache of [C] blocks misses exactly the
    accesses whose reuse distance is [>= C] (plus cold misses), so one
    profiling pass predicts the miss ratio of {e every} cache size — the
    measurement technology Ding's later work builds on the foundations
    laid in this paper.

    The implementation is the classical one-pass algorithm: a hash table
    of last-access times plus a Fenwick tree counting the still-active
    ones, O(log n) per access. *)

type t

(** [create ~granularity ()] tracks blocks of [granularity] bytes
    (typically the cache line size; must be a positive power of two). *)
val create : granularity:int -> unit -> t

(** Record an access to the block containing [addr]. *)
val access : t -> addr:int -> unit

(** Number of accesses recorded. *)
val total : t -> int

(** First-touch accesses (infinite reuse distance). *)
val cold : t -> int

(** Number of distinct blocks touched. *)
val footprint_blocks : t -> int

(** [misses t ~capacity_blocks] is the number of accesses a fully
    associative LRU cache with that many blocks would miss.  Exact at
    power-of-two capacities (bucket boundaries); in between, the
    straddling bucket's count is prorated assuming a uniform
    distribution inside the bucket and rounded to nearest. *)
val misses : t -> capacity_blocks:int -> int

(** [miss_ratio t ~capacity_blocks] = misses / total (0 if no accesses). *)
val miss_ratio : t -> capacity_blocks:int -> float

(** Histogram in power-of-two buckets: [(lower_bound, count)] with the
    count of finite reuse distances [d] satisfying
    [lower_bound <= d < 2 * max 1 lower_bound]; plus {!cold} infinite
    ones.  Buckets with zero count are omitted. *)
val histogram : t -> (int * int) list

(** Miss-ratio curve over cache sizes in bytes (each converted to
    [size / granularity] blocks): [(size_bytes, miss_ratio)]. *)
val curve : t -> sizes:int list -> (int * float) list

(** Distinct bytes touched: {!footprint_blocks} [* granularity]. *)
val footprint_bytes : t -> int

(** The full miss-ratio-vs-cache-size curve, sampled at every
    power-of-two capacity from one block up to the first capacity that
    holds the whole footprint — exactly the points where the bucketed
    histogram is exact.  [(size_bytes, miss_ratio)] pairs, ascending;
    empty when no accesses were recorded.  One profiling pass prices
    every cache size a capacity sweep will ever ask about. *)
val miss_curve : t -> (int * float) list
