(* Chunked delta/varint-encoded trace store.  See trace_store.mli. *)

(* tag byte: bit 0 = kind (0 load / 1 store), bit 1 = bytes unchanged
   from the previous record; then zigzag varint of (addr - prev_addr);
   then, when bit 1 is clear, varint of bytes. *)

(* 1 tag byte + two worst-case 10-byte varints, rounded up. *)
let max_record_bytes = 24

let default_chunk_bytes = 64 * 1024

type t = {
  chunk_bytes : int;
  mutable filled : (Bytes.t * int) list; (* newest first *)
  mutable cur : Bytes.t;
  mutable cur_len : int;
  mutable records : int;
  (* encoder state; decoding replays it from (0, 0) *)
  mutable prev_addr : int;
  mutable prev_bytes : int;
}

let create ?(chunk_bytes = default_chunk_bytes) () =
  if chunk_bytes < max_record_bytes then
    invalid_arg "Trace_store.create: chunk_bytes too small";
  { chunk_bytes;
    filled = [];
    cur = Bytes.create chunk_bytes;
    cur_len = 0;
    records = 0;
    prev_addr = 0;
    prev_bytes = 0 }

let records t = t.records
let chunks t = List.length t.filled + 1

let encoded_bytes t =
  List.fold_left (fun acc (_, len) -> acc + len) t.cur_len t.filled

let bytes_per_record t =
  if t.records = 0 then 0.0
  else float_of_int (encoded_bytes t) /. float_of_int t.records

(* OCaml ints are 63-bit: bit 62 is the sign, so [asr 62] spreads it. *)
let[@inline] zigzag n = (n lsl 1) lxor (n asr 62)
let[@inline] unzigzag z = (z lsr 1) lxor (- (z land 1))

let[@inline] put_varint data pos v =
  let pos = ref pos and v = ref v in
  while !v >= 0x80 do
    Bytes.unsafe_set data !pos (Char.unsafe_chr (0x80 lor (!v land 0x7f)));
    incr pos;
    v := !v lsr 7
  done;
  Bytes.unsafe_set data !pos (Char.unsafe_chr !v);
  !pos + 1

let append t ~kind ~addr ~bytes =
  if addr < 0 then invalid_arg "Trace_store.append: negative address";
  if t.cur_len > t.chunk_bytes - max_record_bytes then begin
    t.filled <- (t.cur, t.cur_len) :: t.filled;
    t.cur <- Bytes.create t.chunk_bytes;
    t.cur_len <- 0
  end;
  let data = t.cur in
  let same_bytes = bytes = t.prev_bytes in
  Bytes.unsafe_set data t.cur_len
    (Char.unsafe_chr ((kind land 1) lor if same_bytes then 2 else 0));
  let pos = put_varint data (t.cur_len + 1) (zigzag (addr - t.prev_addr)) in
  let pos = if same_bytes then pos else put_varint data pos bytes in
  t.cur_len <- pos;
  t.prev_addr <- addr;
  t.prev_bytes <- bytes;
  t.records <- t.records + 1

let append_buffer t buf =
  let data = buf.Trace_buffer.data in
  let n = buf.Trace_buffer.len in
  for r = 0 to n - 1 do
    let i = r * Trace_buffer.slot_width in
    append t
      ~kind:(Array.unsafe_get data i)
      ~addr:(Array.unsafe_get data (i + 1))
      ~bytes:(Array.unsafe_get data (i + 2))
  done

(* Decode [stop - start] records of one chunk, threading (prev_addr,
   prev_bytes) across calls; [f kind addr bytes] per record. *)
let decode_chunk data len ~prev_addr ~prev_bytes ~f =
  let pos = ref 0 in
  let addr = ref prev_addr and bytes = ref prev_bytes in
  while !pos < len do
    let tag = Char.code (Bytes.unsafe_get data !pos) in
    incr pos;
    let z = ref 0 and shift = ref 0 and cont = ref true in
    while !cont do
      let b = Char.code (Bytes.unsafe_get data !pos) in
      incr pos;
      z := !z lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      cont := b >= 0x80
    done;
    addr := !addr + unzigzag !z;
    if tag land 2 = 0 then begin
      let v = ref 0 and shift = ref 0 and cont = ref true in
      while !cont do
        let b = Char.code (Bytes.unsafe_get data !pos) in
        incr pos;
        v := !v lor ((b land 0x7f) lsl !shift);
        shift := !shift + 7;
        cont := b >= 0x80
      done;
      bytes := !v
    end;
    f (tag land 1) !addr !bytes
  done;
  (!addr, !bytes)

let iter t ~f =
  let all = List.rev ((t.cur, t.cur_len) :: t.filled) in
  ignore
    (List.fold_left
       (fun (prev_addr, prev_bytes) (data, len) ->
         decode_chunk data len ~prev_addr ~prev_bytes ~f)
       (0, 0) all)

let replay ?remap t ~translation ~cache ~counters =
  let identity = Translate.is_identity translation in
  let loads = ref 0 and stores = ref 0 in
  let consume =
    (* Specialised per configuration so the common identity/identity
       replay pays neither closure. *)
    match remap with
    | None ->
      fun kind addr bytes ->
        let addr = if identity then addr else Translate.apply translation addr in
        if kind = 0 then begin
          incr loads;
          Cache.read cache ~addr ~bytes
        end
        else begin
          incr stores;
          Cache.write cache ~addr ~bytes
        end
    | Some remap ->
      fun kind addr bytes ->
        let addr = remap addr in
        let addr = if identity then addr else Translate.apply translation addr in
        if kind = 0 then begin
          incr loads;
          Cache.read cache ~addr ~bytes
        end
        else begin
          incr stores;
          Cache.write cache ~addr ~bytes
        end
  in
  iter t ~f:consume;
  counters.Counters.loads <- counters.Counters.loads + !loads;
  counters.Counters.stores <- counters.Counters.stores + !stores
