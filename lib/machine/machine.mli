(** Machine models: computation rate plus data bandwidth at every level of
    the memory hierarchy, following the paper's definition of machine
    balance (bytes of transfer available per peak flop).

    Two calibrated configurations mirror the paper's testbeds:
    {!origin2000} (SGI Origin2000, MIPS R10K: 4 bytes/flop register
    bandwidth, 4 bytes/flop L1-L2, 0.8 bytes/flop memory — the Figure 1
    bottom row) and {!exemplar} (HP/Convex Exemplar, PA-8000: one large
    direct-mapped cache, whose conflict behaviour explains the 3w6r outlier
    of Figure 3). *)

type paging =
  | Contiguous  (** arrays stay physically contiguous *)
  | Random_pages of { page_bytes : int; seed : int }
      (** each page lands on a pseudo-random physical page, as under a
          real OS — the source of direct-mapped conflict misses *)

type t = {
  name : string;
  flops_per_sec : float;  (** peak floating-point rate *)
  register_bandwidth : float;  (** bytes/s between registers and L1 *)
  caches : Cache.geometry list;  (** L1 first *)
  cache_bandwidths : float list;
      (** bytes/s between cache level [i] and level [i+1]; the last entry
          is the memory bus bandwidth.  Length = [List.length caches]. *)
  cache_write_policy : Cache.write_policy;
      (** store handling across the hierarchy ({!Cache.Write_back} on
          both calibrated testbeds; {!Cache.Write_through} models
          no-write-allocate machines) *)
  writeback_penalty : float;
      (** relative cost of a write-back byte on the memory bus (>= 1);
          models read/write turnaround on the §2.1 measurements *)
  array_stagger_bytes : int;
      (** padding inserted between consecutively allocated arrays, to
          model allocator behaviour; 0 packs arrays back to back *)
  array_align_bytes : int;
      (** alignment of each array's base address; large-array allocators
          return page-aligned blocks, which is what makes same-index
          elements of different arrays collide in a physically indexed
          cache *)
  paging : paging;
}

(** A fresh translation function implementing [t.paging]. *)
val fresh_translation : t -> Translate.t

(** Names of the hierarchy boundaries, CPU-side first:
    ["L1-Reg"; "L2-L1"; "Mem-L2"] for a two-level machine. *)
val boundary_names : t -> string list

(** Machine balance in bytes/flop for each boundary of {!boundary_names}. *)
val balance : t -> float list

(** Build a fresh cache hierarchy for this machine. *)
val fresh_cache : t -> Cache.t

val origin2000 : t
val exemplar : t

(** A machine with ample bandwidth everywhere — the "infinite bandwidth"
    comparator used to quantify the bottleneck. *)
val unconstrained : t

(** [scaled ~name ~memory_factor m] multiplies only the memory-bus
    bandwidth, for sensitivity studies. *)
val scaled : name:string -> memory_factor:float -> t -> t

val pp : Format.formatter -> t -> unit
