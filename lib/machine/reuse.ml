(* Fenwick (binary indexed) tree over access timestamps: position [i]
   holds 1 while timestamp [i] is the most recent access to its block.
   The raw bit array is kept alongside so the tree can be rebuilt when it
   grows or is compacted.

   The block -> last-stamp map is an open-addressing table (linear
   probing, power-of-two size, -1 = empty) rather than a Hashtbl: the
   lookup is one multiply-mix and usually one array probe, with no
   allocation — this map is hit once per profiled access, so it
   dominates the profiler's constant factor. *)
type t = {
  granularity : int;
  mutable keys : int array; (* block per slot; -1 = empty *)
  mutable stamps : int array; (* last-access stamp per occupied slot *)
  mutable entries : int;
  mutable bits : Bytes.t; (* bits.(t) = 1 if timestamp t is active *)
  mutable fen : int array; (* 1-based Fenwick over bits *)
  mutable time : int; (* stamp clock; rewound by compaction *)
  mutable accesses : int; (* monotonic, unlike the stamp clock *)
  mutable repeats : int; (* immediate same-block repeats, elided below *)
  mutable last_block : int;
  mutable cold : int;
  mutable finite_counts : int array; (* log2-bucket histogram *)
}

let create ~granularity () =
  if granularity <= 0 || granularity land (granularity - 1) <> 0 then
    invalid_arg "Reuse.create: granularity must be a positive power of two";
  { granularity;
    keys = Array.make 4096 (-1);
    stamps = Array.make 4096 0;
    entries = 0;
    bits = Bytes.make 1024 '\000';
    fen = Array.make 1025 0;
    time = 0;
    accesses = 0;
    repeats = 0;
    last_block = min_int;
    cold = 0;
    finite_counts = Array.make 64 0 }

(* Slot holding [block], or the empty slot where it belongs. *)
let[@inline] slot keys block =
  let mask = Array.length keys - 1 in
  let h = block * 0x9E3779B1 in
  let i = ref ((h lxor (h lsr 29)) land mask) in
  while
    let k = Array.unsafe_get keys !i in
    k >= 0 && k <> block
  do
    i := (!i + 1) land mask
  done;
  !i

let grow_table t =
  let old_keys = t.keys and old_stamps = t.stamps in
  let size' = 2 * Array.length old_keys in
  let keys' = Array.make size' (-1) in
  let stamps' = Array.make size' 0 in
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let s = slot keys' k in
        keys'.(s) <- k;
        stamps'.(s) <- old_stamps.(i)
      end)
    old_keys;
  t.keys <- keys';
  t.stamps <- stamps'

(* Standard in-place O(n) Fenwick construction: seed each leaf with its
   bit, then push every node's partial sum into its parent — instead of
   an O(n log n) point-update per set bit. *)
let rebuild_fen bits fen cap =
  for i = 0 to cap - 1 do
    fen.(i + 1) <- (if Bytes.unsafe_get bits i = '\001' then 1 else 0)
  done;
  for i = 1 to cap do
    let j = i + (i land -i) in
    if j <= cap then fen.(j) <- fen.(j) + fen.(i)
  done

(* Renumber the active timestamps 0..k-1, preserving their order.  Only
   relative order matters for distances (the count of active stamps
   between two accesses), so this is invisible to every query — and it
   keeps the bit array and Fenwick tree sized by the *footprint* rather
   than the access count, which is what makes long traces cheap: the
   structures stay cache-resident instead of growing with the trace. *)
let compact t =
  let cap = Bytes.length t.bits in
  let rev = Array.make t.time (-1) in
  Array.iteri (fun s k -> if k >= 0 then rev.(t.stamps.(s)) <- s) t.keys;
  let k = ref 0 in
  for i = 0 to t.time - 1 do
    let s = rev.(i) in
    if s >= 0 then begin
      t.stamps.(s) <- !k;
      incr k
    end
  done;
  Bytes.fill t.bits 0 cap '\000';
  Bytes.fill t.bits 0 !k '\001';
  t.time <- !k;
  rebuild_fen t.bits t.fen cap

let ensure_capacity t wanted =
  let cap = Bytes.length t.bits in
  if wanted >= cap then begin
    (* Compact in place when at least half the stamps are dead (the
       amortisation argument: each compaction frees >= cap/2 slots, so
       its O(cap) cost is O(1) per access); grow only when the live
       footprint genuinely needs the room. *)
    if 2 * t.entries <= cap then compact t
    else begin
      let cap' = max (2 * cap) (wanted + 1) in
      let bits' = Bytes.make cap' '\000' in
      Bytes.blit t.bits 0 bits' 0 cap;
      t.bits <- bits';
      let fen' = Array.make (cap' + 1) 0 in
      rebuild_fen bits' fen' cap';
      t.fen <- fen'
    end
  end

let fen_add t i delta =
  let n = Array.length t.fen - 1 in
  let rec go j =
    if j <= n then begin
      t.fen.(j) <- t.fen.(j) + delta;
      go (j + (j land -j))
    end
  in
  go (i + 1)

(* count of active timestamps in [0, i] *)
let fen_prefix t i =
  let rec go j acc =
    if j <= 0 then acc else go (j - (j land -j)) (acc + t.fen.(j))
  in
  go (i + 1) 0

let bucket_of d =
  if d = 0 then 0
  else begin
    let rec log2 x acc = if x <= 1 then acc else log2 (x lsr 1) (acc + 1) in
    1 + log2 d 0
  end

let access t ~addr =
  if addr < 0 then invalid_arg "Reuse.access: negative address";
  let block = addr / t.granularity in
  if block = t.last_block then begin
    (* Immediate repeat: distance 0, and the block's stamp is already
       the most recent active one, so no structure needs touching —
       re-stamping it would be a no-op for every later distance. *)
    t.finite_counts.(0) <- t.finite_counts.(0) + 1;
    t.repeats <- t.repeats + 1
  end
  else begin
    ensure_capacity t t.time;
    let s = slot t.keys block in
    if Array.unsafe_get t.keys s < 0 then begin
      t.cold <- t.cold + 1;
      Array.unsafe_set t.keys s block;
      Array.unsafe_set t.stamps s t.time;
      t.entries <- t.entries + 1;
      if 2 * t.entries > Array.length t.keys then grow_table t
    end
    else begin
      let t0 = Array.unsafe_get t.stamps s in
      (* distinct blocks touched strictly after t0 *)
      let active_after = fen_prefix t (t.time - 1) - fen_prefix t t0 in
      let b = bucket_of active_after in
      if b >= Array.length t.finite_counts then begin
        let counts' = Array.make (2 * b) 0 in
        Array.blit t.finite_counts 0 counts' 0 (Array.length t.finite_counts);
        t.finite_counts <- counts'
      end;
      t.finite_counts.(b) <- t.finite_counts.(b) + 1;
      (* deactivate the previous access *)
      Bytes.set t.bits t0 '\000';
      fen_add t t0 (-1);
      Array.unsafe_set t.stamps s t.time
    end;
    Bytes.set t.bits t.time '\001';
    fen_add t t.time 1;
    t.last_block <- block;
    t.time <- t.time + 1;
    t.accesses <- t.accesses + 1
  end

let total t = t.accesses + t.repeats
let cold t = t.cold
let footprint_blocks t = t.entries

let bucket_lower b = if b = 0 then 0 else 1 lsl (b - 1)

let histogram t =
  Array.to_list t.finite_counts
  |> List.mapi (fun b count -> (bucket_lower b, count))
  |> List.filter (fun (_, c) -> c > 0)

let misses t ~capacity_blocks =
  if capacity_blocks <= 0 then total t
  else begin
    (* finite distances >= capacity miss; bucket granularity makes this
       exact only at power-of-two capacities, so count buckets whose
       entire range is >= capacity and prorate the straddling bucket
       assuming a uniform distribution inside it. *)
    let hits_and_misses =
      Array.to_list t.finite_counts
      |> List.mapi (fun b count -> (b, count))
      |> List.fold_left
           (fun acc (b, count) ->
             if count = 0 then acc
             else begin
               let lo = bucket_lower b in
               let hi = if b = 0 then 1 else 2 * lo in
               if lo >= capacity_blocks then acc + count
               else if hi <= capacity_blocks then acc
               else begin
                 (* Straddling bucket: round the prorated count to the
                    nearest integer — truncation biased every mid-bucket
                    capacity towards hits. *)
                 let frac =
                   float_of_int (hi - capacity_blocks)
                   /. float_of_int (hi - lo)
                 in
                 acc + int_of_float ((frac *. float_of_int count) +. 0.5)
               end
             end)
           0
    in
    hits_and_misses + t.cold
  end

let miss_ratio t ~capacity_blocks =
  let n = total t in
  if n = 0 then 0.0
  else float_of_int (misses t ~capacity_blocks) /. float_of_int n

let curve t ~sizes =
  List.map
    (fun size ->
      (size, miss_ratio t ~capacity_blocks:(max 1 (size / t.granularity))))
    sizes

let footprint_bytes t = t.entries * t.granularity

let miss_curve t =
  if total t = 0 then []
  else begin
    let rec go cap acc =
      let acc = (cap * t.granularity, miss_ratio t ~capacity_blocks:cap) :: acc in
      if cap >= t.entries || cap > max_int / 4 then List.rev acc
      else go (cap * 2) acc
    in
    go 1 []
  end
