type paging =
  | Contiguous
  | Random_pages of { page_bytes : int; seed : int }

type t = {
  name : string;
  flops_per_sec : float;
  register_bandwidth : float;
  caches : Cache.geometry list;
  cache_bandwidths : float list;
  cache_write_policy : Cache.write_policy;
  writeback_penalty : float;
  array_stagger_bytes : int;
  array_align_bytes : int;
  paging : paging;
}

let fresh_translation t =
  match t.paging with
  | Contiguous -> Translate.identity
  | Random_pages { page_bytes; seed } -> Translate.hashed ~page_bytes ~seed

let boundary_names t =
  let n = List.length t.caches in
  let cache_name i = Printf.sprintf "L%d" (i + 1) in
  let rec boundaries i =
    if i >= n then []
    else if i = n - 1 then [ Printf.sprintf "Mem-%s" (cache_name i) ]
    else Printf.sprintf "%s-%s" (cache_name (i + 1)) (cache_name i)
         :: boundaries (i + 1)
  in
  ("L1-Reg" :: boundaries 0)
  |> fun names -> if t.caches = [] then [ "Mem-Reg" ] else names

let balance t =
  let bws =
    if t.caches = [] then [ t.register_bandwidth ]
    else t.register_bandwidth :: t.cache_bandwidths
  in
  List.map (fun bw -> bw /. t.flops_per_sec) bws

let fresh_cache t = Cache.create ~write_policy:t.cache_write_policy t.caches

(* SGI Origin2000, 195 MHz MIPS R10000: peak 390 Mflops (fused
   multiply-add), 32 KB 2-way L1 with 32 B lines, 4 MB 2-way unified L2
   with 128 B lines.  Bandwidths follow the paper's Figure 1 bottom row:
   4 bytes/flop to registers and between caches, 0.8 bytes/flop to memory
   (312 MB/s, matching the ~300 MB/s STREAM figure the paper cites). *)
let origin2000 =
  let flops = 390e6 in
  { name = "Origin2000";
    flops_per_sec = flops;
    register_bandwidth = 4.0 *. flops;
    caches =
      [ { Cache.size_bytes = 32 * 1024; line_bytes = 32; associativity = 2 };
        { Cache.size_bytes = 4 * 1024 * 1024;
          line_bytes = 128;
          associativity = 2 } ];
    cache_bandwidths = [ 4.0 *. flops; 0.8 *. flops ];
    cache_write_policy = Cache.Write_back;
    writeback_penalty = 1.15;
    (* IRIX-style page colouring: consecutive arrays staggered by a page,
       so parallel streams never collide in the two-way caches *)
    array_stagger_bytes = 4 * 1024;
    array_align_bytes = 4 * 1024;
    paging = Contiguous }

(* HP/Convex Exemplar, 180 MHz PA-8000: peak 720 Mflops, a single large
   off-chip direct-mapped data cache (1 MB, 32 B lines), virtually
   indexed, so cache placement follows the packed virtual layout
   directly.  Memory bandwidth set so the stride-1 kernels land in the
   paper's 417-551 MB/s band.  When enough large arrays are packed one
   after another, two of them can land on the same line index and thrash
   the direct-mapped cache — the paper's 3w6r footnote. *)
let exemplar =
  let flops = 720e6 in
  { name = "Exemplar";
    flops_per_sec = flops;
    register_bandwidth = 4.0 *. flops;
    caches =
      [ { Cache.size_bytes = 1024 * 1024; line_bytes = 32; associativity = 1 } ];
    cache_bandwidths = [ 560e6 ];
    cache_write_policy = Cache.Write_back;
    writeback_penalty = 1.4;
    array_stagger_bytes = 4096;
    array_align_bytes = 8;
    paging = Contiguous }

let unconstrained =
  let flops = 390e6 in
  { name = "Unconstrained";
    flops_per_sec = flops;
    register_bandwidth = 1e15;
    caches =
      [ { Cache.size_bytes = 32 * 1024; line_bytes = 32; associativity = 2 };
        { Cache.size_bytes = 4 * 1024 * 1024;
          line_bytes = 128;
          associativity = 2 } ];
    cache_bandwidths = [ 1e15; 1e15 ];
    cache_write_policy = Cache.Write_back;
    writeback_penalty = 1.0;
    array_stagger_bytes = 4 * 1024;
    array_align_bytes = 4 * 1024;
    paging = Contiguous }

let scaled ~name ~memory_factor m =
  let rec scale_last = function
    | [] -> []
    | [ bw ] -> [ bw *. memory_factor ]
    | bw :: rest -> bw :: scale_last rest
  in
  { m with name; cache_bandwidths = scale_last m.cache_bandwidths }

let pp ppf t =
  Format.fprintf ppf "@[<v>%s: %.0f Mflops peak@," t.name
    (t.flops_per_sec /. 1e6);
  List.iter2
    (fun name b -> Format.fprintf ppf "  %-8s %.2f bytes/flop@," name b)
    (boundary_names t) (balance t);
  Format.fprintf ppf "@]"
