(** Compact captured memory-reference trace: capture once, replay many.

    A {!t} is an append-only record of a [(kind, addr, bytes)] stream —
    the same stream {!Trace_buffer} batches between the execution engines
    and the cache simulator — stored delta/varint-encoded in fixed-size
    chunks.  Stride-1 sweeps, the common case, cost ~2 bytes per record
    against the 24 bytes of the flat in-flight representation, so whole
    program traces stay resident while many machine models are evaluated
    against them.

    The division of labour with the rest of the pipeline:

    - the execution engine fills a store {e once} (via
      {!Bw_exec.Run.capture}, whose trace-buffer drain hook calls
      {!append_buffer});
    - {!replay} drains the recorded stream into any {!Cache.t} +
      {!Counters.t} pair, applying an optional address [remap] (layout
      re-basing) and a {!Translate.t} {e at replay time} — so one capture
      serves machines that differ in cache geometry, write policy, page
      translation, or array layout stagger.

    Replay preserves the exact record order of the capture, which is what
    makes replayed cache statistics bit-identical to a direct simulation
    (the property {!Bw_exec.Run} enforces in the test suite).

    Encoding, per record: one tag byte (kind, and a same-bytes flag),
    a zigzag varint of the address delta from the previous record, and —
    only when it changed — a varint of the access width.  Decoding state
    flows across chunk boundaries; records never straddle chunks. *)

type t

(** [create ()] is an empty store.  [chunk_bytes] (default 64 KB, min
    {!max_record_bytes}) sizes the encoding chunks; small values are only
    useful to stress chunk-boundary handling in tests. *)
val create : ?chunk_bytes:int -> unit -> t

(** Upper bound on the encoded size of one record; chunks are closed when
    fewer than this many bytes remain. *)
val max_record_bytes : int

(** Append one record.  [kind] is {!Trace_buffer.kind_load} or
    {!Trace_buffer.kind_store}; [addr] must be non-negative. *)
val append : t -> kind:int -> addr:int -> bytes:int -> unit

(** Append every record currently buffered (does not reset the buffer —
    usable directly as a {!Trace_buffer} drain handler's body). *)
val append_buffer : t -> Trace_buffer.t -> unit

(** Number of records appended. *)
val records : t -> int

(** Total encoded size in bytes (filled chunks plus the open one). *)
val encoded_bytes : t -> int

(** Number of chunks allocated (filled plus the open one). *)
val chunks : t -> int

(** Mean encoded bytes per record (0 when empty). *)
val bytes_per_record : t -> float

(** [iter t ~f] calls [f kind addr bytes] on every record, in append
    order, with the raw captured addresses (no remap, no translation). *)
val iter : t -> f:(int -> int -> int -> unit) -> unit

(** [replay t ~translation ~cache ~counters] feeds every record through
    [remap] (default: identity) then [translation] into [cache], and
    tallies loads/stores into [counters] — the same hot loop
    {!Bw_exec.Run.simulate} drains its live trace through, so the
    resulting cache statistics are bit-identical to a direct run. *)
val replay :
  ?remap:(int -> int) ->
  t ->
  translation:Translate.t ->
  cache:Cache.t ->
  counters:Counters.t ->
  unit
