(** Virtual-to-physical address translation models.

    Cache indexing on real machines uses physical addresses, so the
    OS page allocator determines which large-array offsets collide in a
    physically-indexed cache.  [Identity] models a machine whose big
    arrays stay contiguous in physical memory; [hashed] models the
    effectively random page placement of a real OS, which is what makes
    many-array kernels suffer conflict misses on a direct-mapped cache
    (the paper's 3w6r outlier on the Exemplar, Figure 3). *)

type t

val identity : t

(** [hashed ~page_bytes ~seed] maps each virtual page, on first touch, to
    a distinct pseudo-random physical page.  Deterministic in [seed];
    injective, so no false aliasing. *)
val hashed : page_bytes:int -> seed:int -> t

val apply : t -> int -> int

(** True iff {!apply} is the identity — lets hot loops skip it wholesale. *)
val is_identity : t -> bool

(** Forget all established mappings (hashed only). *)
val reset : t -> unit
