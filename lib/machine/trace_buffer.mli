(** Preallocated flat buffer of memory-reference records.

    The execution engines append one [(kind, addr, bytes)] record per
    load or store with plain unboxed [int array] writes — no closure
    call, no allocation — and a consumer drains the records in batches:
    into the cache simulator and counters ({!Bw_exec.Run.simulate}), into
    a reuse profiler, or nowhere (pure observation runs).

    The record layout is exposed ([data], [length], {!slot_width}) so
    batch consumers can walk the buffer with a tight loop instead of a
    per-record callback. *)

(** Number of [int] slots per record in {!t.data}: kind, address, bytes. *)
val slot_width : int

type t = {
  data : int array;  (** [slot_width] ints per record: kind, addr, bytes *)
  capacity : int;  (** in records *)
  mutable len : int;  (** records currently buffered *)
  mutable on_full : t -> unit;
      (** drain handler, invoked when an append finds the buffer full and
          by {!flush}; the buffer is reset after it returns.  It must not
          append to the buffer it is draining. *)
  mutable flushes : int;
      (** number of times the drain handler has run, for the
          observability layer's [engine.*.trace_flushes] counters *)
}

val kind_load : int
val kind_store : int

(** [create ~on_full ()] allocates a buffer of [capacity] records
    (default 1024 — 24 KB of ints, small enough to stay hot in the host
    CPU's cache while still amortising the drain call). *)
val create : ?capacity:int -> on_full:(t -> unit) -> unit -> t

(** Replace the drain handler (used to rebind a shared buffer). *)
val set_on_full : t -> (t -> unit) -> unit

(** Append a load/store record, draining first if the buffer is full. *)
val load : t -> addr:int -> bytes:int -> unit

val store : t -> addr:int -> bytes:int -> unit

val length : t -> int

(** Call [f kind addr bytes] on each buffered record, oldest first. *)
val iter : t -> f:(int -> int -> int -> unit) -> unit

(** [iter] then empty the buffer. *)
val drain : t -> f:(int -> int -> int -> unit) -> unit

(** Drain any buffered records through [on_full].  Call once at the end
    of a run; appends made after a [flush] are buffered as usual. *)
val flush : t -> unit

(** Discard buffered records without draining them. *)
val reset : t -> unit

(** Times the drain handler has run (overflow drains plus {!flush}). *)
val flushes : t -> int
