(** Deterministic pseudo-random generators for graphs and hyper-graphs,
    used by property tests and by the scaling benchmarks.

    {b Determinism:} every generator is a pure function of its
    arguments.  Each draws from a private [Random.State] derived from
    its explicit [seed]; nothing here reads or seeds the global random
    state (no [Random.self_init]), so equal arguments produce identical
    graphs across runs and processes — the same contract as
    [Bw_workloads.Random_programs], [Bw_workloads.Dag_family] and
    [Bw_fusion.Search]. *)

(** [digraph ~seed ~nodes ~edge_prob] is a random directed graph; each of
    the [nodes * (nodes-1)] ordered pairs is an edge with probability
    [edge_prob]. *)
val digraph : seed:int -> nodes:int -> edge_prob:float -> Digraph.t

(** [dag ~seed ~nodes ~edge_prob] only generates edges [u -> v] with
    [u < v], hence always acyclic. *)
val dag : seed:int -> nodes:int -> edge_prob:float -> Digraph.t

(** [undirected ~seed ~nodes ~edge_prob ~max_weight] draws each unordered
    pair with the given probability and a weight uniform in
    [1 .. max_weight]. *)
val undirected :
  seed:int -> nodes:int -> edge_prob:float -> max_weight:int -> Undirected.t

(** [hypergraph ~seed ~nodes ~edges ~max_arity] draws [edges] hyper-edges,
    each over a uniform random subset of size in [1 .. max_arity]. *)
val hypergraph :
  seed:int -> nodes:int -> edges:int -> max_arity:int -> Hypergraph.t
