(** Plain-text exposition of {!Bw_obs.Metrics} for the [/metrics]
    endpoint: Prometheus line format — names with ['.'] mapped to
    ['_'], ["name value"] per counter/gauge, histograms flattened to
    [_count]/[_sum] and cumulative [_bucket{le="..."}] lines. *)

val render : unit -> string

(** Map a metric name to its exposition spelling ([.] → [_]). *)
val sanitize : string -> string
