(** Bounded, LRU-evicting, single-flight result cache — the
    content-addressed store behind the serve daemon.

    Keys are the canonical strings of {!Protocol.cache_key} (IR digest
    × machine × pipeline config × ...); values are whatever the server
    caches under them (serialised result payloads, captures).  The
    cache is safe for concurrent use from any mix of domains and
    threads.

    {b Single-flight}: concurrent {!find_or_compute} calls for the same
    key execute the computation exactly once — later callers block and
    receive the first caller's result ([`Joined]).  A computation that
    raises caches nothing and wakes the waiters, one of which retries;
    a transient failure cannot poison a key.

    Counted in {!Bw_obs.Metrics} under [<prefix>hit], [<prefix>miss],
    [<prefix>eviction] and [<prefix>join] (default prefix
    [serve.cache.]). *)

type 'a t

(** @raise Invalid_argument if [capacity < 1]. *)
val create : ?metric_prefix:string -> capacity:int -> unit -> 'a t

(** [find_or_compute t ~key f] returns the cached value and [`Hit],
    waits out another caller's computation and returns [`Joined], or
    runs [f ()], caches it (evicting the least-recently-used entry when
    at capacity) and returns [`Miss].  Re-raises [f]'s exception. *)
val find_or_compute :
  'a t -> key:string -> (unit -> 'a) -> 'a * [ `Hit | `Miss | `Joined ]

(** Peek without computing (still refreshes recency and counts a hit
    when present). *)
val find : 'a t -> string -> 'a option

val mem : 'a t -> string -> bool

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  single_flight_joins : int;
}

val stats : 'a t -> stats
