(** Blocking client for the [bwc serve] wire protocol — one JSON
    request per line, one JSON response line back.  Used by
    [bwc client], the load generator, and the tests.

    Two layers: the plain client ({!connect}/{!request}) does exactly
    one attempt, while {!resilient} adds per-attempt socket timeouts,
    bounded retries with decorrelated-jitter exponential backoff and a
    total sleep budget, honours the server's [retry_after_ms] hint,
    and only ever retries idempotent requests
    ({!Protocol.idempotent}). *)

type t

(** Connect to a running server.  [timeout_s] sets SO_RCVTIMEO /
    SO_SNDTIMEO so a stalled server surfaces as a transport error
    instead of a hang.  Raises [Unix.Unix_error] (or [Failure] for an
    unresolvable host) on failure. *)
val connect : ?timeout_s:float -> Server.addr -> t

val close : t -> unit

(** Send an already-encoded request line and parse the response line.
    Errors are transport/parse-level only — a server-side failure comes
    back as an [Ok] response with ["status": "error"]. *)
val request_raw : t -> string -> (Bw_core.Json.t, string) result

(** Encode and send a {!Protocol.request}. *)
val request : t -> Protocol.request -> (Bw_core.Json.t, string) result

(** Connect, send one request, read the response, close. *)
val one_shot : Server.addr -> Protocol.request -> (Bw_core.Json.t, string) result

(** Scrape the [/metrics] endpoint over a fresh connection and return
    the exposition body (HTTP headers stripped). *)
val fetch_metrics : Server.addr -> (string, string) result

(** {2 Resilient client} *)

type retry_config = {
  timeout_s : float;  (** per-attempt socket timeout; [0.] = none *)
  max_retries : int;  (** additional attempts per request *)
  base_backoff_ms : int;  (** backoff floor *)
  max_backoff_ms : int;  (** backoff ceiling *)
  retry_budget_ms : int;
      (** total backoff sleep allowed over the client's lifetime; once
          spent, failures are returned instead of retried *)
}

(** 10 s timeout, 3 retries, 25 ms..2 s backoff, 30 s budget. *)
val default_retry_config : retry_config

type resilient

(** Lazily-connecting retrying client.  [seed] makes the jitter
    deterministic for tests. *)
val resilient : ?cfg:retry_config -> ?seed:int -> Server.addr -> resilient

val resilient_close : resilient -> unit

(** Retries performed so far (across all requests on this client). *)
val retry_count : resilient -> int

(** One request with retries.  Transport errors (including timeouts —
    the connection is re-established, since the stream may hold a
    half-written reply) and server rejections with a retryable [code]
    ([overloaded], honouring its [retry_after_ms]; [worker_crashed])
    are retried with backoff while attempts and budget remain, and only
    for idempotent requests.  Other structured errors — including
    [deadline_exceeded] and [shutting_down] — are returned as-is:
    they are answers, not transport failures. *)
val resilient_request :
  resilient -> Protocol.request -> (Bw_core.Json.t, string) result
