(** Blocking client for the [bwc serve] wire protocol — one JSON
    request per line, one JSON response line back.  Used by
    [bwc client], the load generator, and the tests. *)

type t

(** Connect to a running server.  Raises [Unix.Unix_error] (or
    [Failure] for an unresolvable host) on failure. *)
val connect : Server.addr -> t

val close : t -> unit

(** Send an already-encoded request line and parse the response line.
    Errors are transport/parse-level only — a server-side failure comes
    back as an [Ok] response with ["status": "error"]. *)
val request_raw : t -> string -> (Bw_core.Json.t, string) result

(** Encode and send a {!Protocol.request}. *)
val request : t -> Protocol.request -> (Bw_core.Json.t, string) result

(** Connect, send one request, read the response, close. *)
val one_shot : Server.addr -> Protocol.request -> (Bw_core.Json.t, string) result

(** Scrape the [/metrics] endpoint over a fresh connection and return
    the exposition body (HTTP headers stripped). *)
val fetch_metrics : Server.addr -> (string, string) result
