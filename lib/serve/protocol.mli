(** The [bwc serve] wire protocol: versioned request/response JSON.

    {2 Framing}

    One JSON document per line, newline-terminated, in both directions
    ("JSON lines").  A connection carries any number of requests,
    answered in order.  As a convenience for scraping, a raw line
    beginning with [GET /metrics] is answered with a minimal HTTP
    response carrying the plain-text metrics exposition and closes the
    connection — [curl http://host:port/metrics] works against a TCP
    server.

    {2 Envelope}

    Requests carry [{"v":1,"op":...,...}]; the version defaults to the
    current one and a mismatched version is rejected.  Responses are
    [{"v":1,"id":...,"op":...,"status":"ok","cached":bool,"result":...}]
    or [{"v":1,"id":...,"status":"error","error":"one-line message"}].
    A malformed or invalid request produces an error {e response} — it
    never terminates the connection, let alone the daemon.

    {2 Resilience envelope}

    Requests may carry a [deadline_ms] budget; the server clamps it to
    its configured cap and answers [code:"deadline_exceeded"] when the
    budget runs out before the result is ready.  Error responses may
    carry a machine-readable [code] ([bad_request],
    [deadline_exceeded], [overloaded], [shutting_down],
    [request_too_large], [worker_crashed]) and, for [overloaded], a
    [retry_after_ms] hint that well-behaved clients honour.  Under
    overload the server may answer a degradable op ([analyze],
    [predict]) from the analytic tier instead of queueing: such
    responses gain [degraded:true] plus a [fidelity] tag and are never
    served from or stored into the result cache, so the byte-identical
    cache-hit guarantee only ever covers full-fidelity answers.

    {2 Caching}

    {!cache_key} names the answer, not the request text: the program
    part is the canonical {!Bw_ir.Digest}, and every answer-affecting
    knob (op, machine list, engine, budget, pipeline configuration,
    fuzz parameters) is spelled into the key.  Ops without deterministic
    answers ([ping], [metrics], [shutdown]) have no key. *)

module Json = Bw_core.Json

val version : int

type op =
  | Ping  (** liveness + server info *)
  | Metrics  (** plain-text metrics exposition *)
  | Analyze  (** simulate on each machine: balance, counters, timing *)
  | Predict  (** tiered evaluation at the requested budget *)
  | Optimize  (** guarded pipeline + before/after simulation *)
  | Simulate  (** capture once, replay per machine (batched server-side) *)
  | Fuzz  (** differential fuzzing over seeded programs *)
  | Shutdown  (** begin graceful drain *)

val op_name : op -> string
val op_of_name : string -> op option

(** Guard configuration of an [optimize] request. *)
type pipeline = { validate : int; lint : bool; fuel : int option }

val default_pipeline : pipeline

type request = {
  id : string option;  (** client correlation id, echoed in the response *)
  op : op;
  program : string option;  (** registry name or [.bw] path (server-side) *)
  source : string option;  (** inline [.bw] source, alternative to [program] *)
  scale : int;  (** 1..3, as everywhere else *)
  machines : string list;
  engine : [ `Compiled | `Interpreted ];
  budget : [ `Analytic | `Reuse | `Exact ];  (** predict tier *)
  pipeline : pipeline;
  seed : int;  (** fuzz *)
  count : int;  (** fuzz *)
  size : int;  (** fuzz *)
  no_cache : bool;  (** bypass the result cache for this request *)
  deadline_ms : int option;
      (** client latency budget; the server clamps it to its cap and
          never starts (or continues into a new tier of) work for an
          expired request.  Not part of the cache key: the answer is the
          same whether or not it arrived in time. *)
}

val default_request : op -> request

(** Decode; every failure is a one-line [Error] in the
    {!Bw_core.Loader} style. *)
val request_of_json : Json.t -> (request, string) result

(** {!Json.parse} + {!request_of_json}; malformed JSON is an [Error]. *)
val request_of_string : string -> (request, string) result

val json_of_request : request -> Json.t

(** [degraded] is the fidelity tag of an under-overload analytic answer
    (adds [degraded:true] + [fidelity] to the envelope). *)
val ok_response :
  ?id:string -> ?degraded:string -> op:op -> cached:bool -> Json.t -> Json.t

val error_response :
  ?id:string -> ?code:string -> ?retry_after_ms:int -> string -> Json.t

(** Client-side: extract the result payload or the error message. *)
val response_result : Json.t -> (Json.t, string) result

(** Whether the server answered from its result cache. *)
val response_cached : Json.t -> bool

(** Whether the server degraded this answer to a cheaper tier. *)
val response_degraded : Json.t -> bool

(** Machine-readable error code, when the server attached one. *)
val response_error_code : Json.t -> string option

(** The [overloaded] backoff hint, when present. *)
val response_retry_after_ms : Json.t -> int option

(** Whether a request is safe to retry (everything but [shutdown]). *)
val idempotent : request -> bool

(** Ops the server may answer from the analytic tier under overload. *)
val degradable : op -> bool

(** {2 Machines} *)

val machines_table : (string * Bw_machine.Machine.t) list
val machine_names : string list
val machine : string -> (Bw_machine.Machine.t, string) result
val resolve_machines : request -> (Bw_machine.Machine.t list, string) result

(** {2 Engines, budgets} *)

val engine_of_name : string -> ([ `Compiled | `Interpreted ], string) result
val engine_name : [ `Compiled | `Interpreted ] -> string
val budget_of_name : string -> ([ `Analytic | `Reuse | `Exact ], string) result
val budget_name : [ `Analytic | `Reuse | `Exact ] -> string
val evaluate_budget : [ `Analytic | `Reuse | `Exact ] -> Bw_exec.Evaluate.budget

(** {2 Cache keys and program loading} *)

(** [None] for ops whose answers are not cacheable. *)
val cache_key : request -> program:Bw_ir.Ast.program option -> string option

(** Key of the machine-independent capture shared by simulate requests. *)
val capture_key : request -> program:Bw_ir.Ast.program -> string

val needs_program : request -> bool

(** Resolve [program]/[source] to an IR program ({!Bw_core.Loader} for
    names, the parser for inline source); one-line [Error]s. *)
val load_program : request -> (Bw_ir.Ast.program, string) result
