(* Minimal blocking client for the bwc serve wire protocol: one
   newline-delimited JSON request per line, one response line back. *)

module Json = Bw_core.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect (addr : Server.addr) =
  let fd, sockaddr =
    match addr with
    | Server.Unix_sock path ->
      (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Server.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found ->
            failwith (Printf.sprintf "unknown host '%s'" host))
      in
      (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
       Unix.ADDR_INET (inet, port))
  in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd }

let close t = try Unix.close t.fd with _ -> ()

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t =
  match input_line t.ic with
  | line -> Ok line
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error msg -> Error msg

let request_raw t line =
  send_line t line;
  match recv_line t with
  | Error _ as e -> e
  | Ok reply -> (
    match Json.parse reply with
    | j -> Ok j
    | exception Json.Parse_error msg ->
      Error (Printf.sprintf "malformed response: %s" msg))

let request t req = request_raw t (Json.to_string (Protocol.json_of_request req))

let one_shot addr req =
  let t = connect addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> request t req)

(* Scrape the /metrics endpoint: raw GET line, then read the HTTP
   response until EOF (the server closes after a scrape) and strip the
   header block. *)
let fetch_metrics addr =
  let t = connect addr in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      send_line t "GET /metrics HTTP/1.0";
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf t.ic 1
         done
       with End_of_file -> ());
      let raw = Buffer.contents buf in
      (* locate the blank line separating HTTP headers from the body *)
      let find_sub sep =
        let n = String.length sep and len = String.length raw in
        let rec go i =
          if i + n > len then None
          else if String.sub raw i n = sep then Some (i + n)
          else go (i + 1)
        in
        go 0
      in
      match
        match find_sub "\r\n\r\n" with
        | Some i -> Some i
        | None -> find_sub "\n\n"
      with
      | Some i -> Ok (String.sub raw i (String.length raw - i))
      | None -> Error "no HTTP header/body separator in metrics response")
