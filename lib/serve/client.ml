(* Minimal blocking client for the bwc serve wire protocol: one
   newline-delimited JSON request per line, one response line back. *)

module Json = Bw_core.Json

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ?timeout_s (addr : Server.addr) =
  (* a server dropping the connection mid-request must surface as
     Sys_error, not SIGPIPE-kill the client process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let fd, sockaddr =
    match addr with
    | Server.Unix_sock path ->
      (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Server.Tcp (host, port) ->
      let inet =
        try Unix.inet_addr_of_string host
        with _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found ->
            failwith (Printf.sprintf "unknown host '%s'" host))
      in
      (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0,
       Unix.ADDR_INET (inet, port))
  in
  (match timeout_s with
  | Some s when s > 0.0 -> (
    try
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
    with Unix.Unix_error _ -> ())
  | _ -> ());
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd;
    ic = Unix.in_channel_of_descr fd;
    oc = Unix.out_channel_of_descr fd }

let close t = try Unix.close t.fd with _ -> ()

let send_line t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let recv_line t =
  match input_line t.ic with
  | line -> Ok line
  | exception End_of_file -> Error "connection closed by server"
  | exception Sys_error msg -> Error msg

let request_raw t line =
  match send_line t line with
  | exception Sys_error msg -> Error msg
  | () -> (
    match recv_line t with
    | Error _ as e -> e
    | Ok reply -> (
      match Json.parse reply with
      | j -> Ok j
      | exception Json.Parse_error msg ->
        Error (Printf.sprintf "malformed response: %s" msg)))

let request t req = request_raw t (Json.to_string (Protocol.json_of_request req))

let one_shot addr req =
  let t = connect addr in
  Fun.protect ~finally:(fun () -> close t) (fun () -> request t req)

(* --- resilient client -------------------------------------------------------- *)

type retry_config = {
  timeout_s : float;
  max_retries : int;
  base_backoff_ms : int;
  max_backoff_ms : int;
  retry_budget_ms : int;
}

let default_retry_config =
  { timeout_s = 10.0;
    max_retries = 3;
    base_backoff_ms = 25;
    max_backoff_ms = 2_000;
    retry_budget_ms = 30_000 }

type resilient = {
  r_addr : Server.addr;
  cfg : retry_config;
  rng : Random.State.t;
  mutable conn : t option;
  mutable budget_left_ms : int;
  mutable prev_backoff_ms : int;
  mutable retries : int;
}

let retries_c = Bw_obs.Metrics.counter "client.retries"
let backoff_h = Bw_obs.Metrics.histogram "client.retry.backoff_ms"

let resilient ?(cfg = default_retry_config) ?(seed = 0) addr =
  { r_addr = addr;
    cfg;
    rng = Random.State.make [| seed; 0x5e11e27 |];
    conn = None;
    budget_left_ms = cfg.retry_budget_ms;
    prev_backoff_ms = cfg.base_backoff_ms;
    retries = 0 }

let retry_count rc = rc.retries

let resilient_close rc =
  match rc.conn with
  | Some c ->
    close c;
    rc.conn <- None
  | None -> ()

let rc_conn rc =
  match rc.conn with
  | Some c -> c
  | None ->
    let c =
      connect
        ?timeout_s:
          (if rc.cfg.timeout_s > 0.0 then Some rc.cfg.timeout_s else None)
        rc.r_addr
    in
    rc.conn <- Some c;
    c

(* Decorrelated jitter: sleep ~ uniform(base, prev * 3), capped — the
   spread de-synchronises a thundering herd of retrying clients. *)
let next_backoff_ms rc =
  let base = rc.cfg.base_backoff_ms in
  let hi = max (base + 1) (rc.prev_backoff_ms * 3) in
  let ms = min rc.cfg.max_backoff_ms (base + Random.State.int rc.rng (hi - base)) in
  rc.prev_backoff_ms <- ms;
  ms

(* Sleep within the remaining retry budget; returns false once the
   budget is exhausted (the caller then stops retrying). *)
let backoff_sleep rc ms =
  let ms = min ms rc.budget_left_ms in
  if ms <= 0 then false
  else begin
    Bw_obs.Metrics.observe backoff_h (float_of_int ms);
    rc.budget_left_ms <- rc.budget_left_ms - ms;
    Thread.delay (float_of_int ms /. 1000.);
    true
  end

(* Error codes where the server asks for another attempt: overload
   clears, and a crashed worker has already been respawned.  Deadline
   and drain rejections are final; [request_too_large] would only
   recur. *)
let retryable_code = function
  | Some "overloaded" | Some "worker_crashed" -> true
  | Some _ | None -> false

let resilient_request rc (req : Protocol.request) =
  let idempotent = Protocol.idempotent req in
  let line = Json.to_string (Protocol.json_of_request req) in
  let count_retry () =
    rc.retries <- rc.retries + 1;
    Bw_obs.Metrics.incr retries_c
  in
  let rec attempt n =
    let can_retry = idempotent && n < rc.cfg.max_retries in
    let retry_or fallback sleep_ms =
      if can_retry && backoff_sleep rc sleep_ms then begin
        count_retry ();
        attempt (n + 1)
      end
      else fallback ()
    in
    match rc_conn rc with
    | exception e ->
      let msg = Printexc.to_string e in
      retry_or (fun () -> Error msg) (next_backoff_ms rc)
    | c -> (
      match request_raw c line with
      | Error msg ->
        (* transport failure or read timeout: the stream may hold a
           half-written reply, so always reconnect before retrying *)
        resilient_close rc;
        retry_or (fun () -> Error msg) (next_backoff_ms rc)
      | Ok reply -> (
        match Protocol.response_result reply with
        | Ok _ -> Ok reply
        | Error _ ->
          if retryable_code (Protocol.response_error_code reply) then
            (* honour the server's backoff hint when it gave one,
               jittered so synchronised clients spread back out *)
            let sleep =
              match Protocol.response_retry_after_ms reply with
              | Some ms -> ms + Random.State.int rc.rng (max 1 ((ms / 2) + 1))
              | None -> next_backoff_ms rc
            in
            retry_or (fun () -> Ok reply) sleep
          else Ok reply))
  in
  attempt 0

(* Scrape the /metrics endpoint: raw GET line, then read the HTTP
   response until EOF (the server closes after a scrape) and strip the
   header block. *)
let fetch_metrics addr =
  let t = connect addr in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () ->
      send_line t "GET /metrics HTTP/1.0";
      let buf = Buffer.create 4096 in
      (try
         while true do
           Buffer.add_channel buf t.ic 1
         done
       with End_of_file -> ());
      let raw = Buffer.contents buf in
      (* locate the blank line separating HTTP headers from the body *)
      let find_sub sep =
        let n = String.length sep and len = String.length raw in
        let rec go i =
          if i + n > len then None
          else if String.sub raw i n = sep then Some (i + n)
          else go (i + 1)
        in
        go 0
      in
      match
        match find_sub "\r\n\r\n" with
        | Some i -> Some i
        | None -> find_sub "\n\n"
      with
      | Some i -> Ok (String.sub raw i (String.length raw - i))
      | None -> Error "no HTTP header/body separator in metrics response")
