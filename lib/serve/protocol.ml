(* Versioned JSON wire protocol of the bwc serve daemon.  See
   protocol.mli for the framing and envelope contract. *)

module Json = Bw_core.Json

let version = 1

type op =
  | Ping
  | Metrics
  | Analyze
  | Predict
  | Optimize
  | Simulate
  | Fuzz
  | Shutdown

let op_names =
  [ ("ping", Ping);
    ("metrics", Metrics);
    ("analyze", Analyze);
    ("predict", Predict);
    ("optimize", Optimize);
    ("simulate", Simulate);
    ("fuzz", Fuzz);
    ("shutdown", Shutdown) ]

let op_name op = fst (List.find (fun (_, o) -> o = op) op_names)

let op_of_name s = List.assoc_opt s op_names

type pipeline = { validate : int; lint : bool; fuel : int option }

let default_pipeline = { validate = 0; lint = false; fuel = None }

type request = {
  id : string option;
  op : op;
  program : string option;
  source : string option;
  scale : int;
  machines : string list;
  engine : [ `Compiled | `Interpreted ];
  budget : [ `Analytic | `Reuse | `Exact ];
  pipeline : pipeline;
  seed : int;
  count : int;
  size : int;
  no_cache : bool;
  deadline_ms : int option;
}

let default_request op =
  { id = None;
    op;
    program = None;
    source = None;
    scale = 1;
    machines = [ "origin2000" ];
    engine = `Compiled;
    budget = `Exact;
    pipeline = default_pipeline;
    seed = 1;
    count = 10;
    size = 4;
    no_cache = false;
    deadline_ms = None }

(* --- machine resolution ---------------------------------------------------- *)

let machines_table =
  [ ("origin2000", Bw_machine.Machine.origin2000);
    ("exemplar", Bw_machine.Machine.exemplar);
    ("origin-scaled", Bw_core.Experiments.origin_scaled);
    ("unconstrained", Bw_machine.Machine.unconstrained) ]

let machine_names = List.map fst machines_table

let machine name =
  match List.assoc_opt name machines_table with
  | Some m -> Ok m
  | None ->
    Error
      (Printf.sprintf "unknown machine '%s' (known: %s)" name
         (String.concat ", " machine_names))

let resolve_machines req =
  let rec go = function
    | [] -> Ok []
    | name :: rest ->
      Result.bind (machine name) (fun m ->
          Result.map (fun ms -> m :: ms) (go rest))
  in
  match req.machines with [] -> Error "empty machine list" | ms -> go ms

(* --- request decoding ------------------------------------------------------ *)

(* One-line failures in the Bw_core.Loader style: every malformed field
   is an [Error msg], never an exception — the daemon turns these into
   structured error responses and keeps serving. *)

let engine_of_name = function
  | "compiled" -> Ok `Compiled
  | "interpreted" -> Ok `Interpreted
  | s -> Error (Printf.sprintf "unknown engine '%s' (compiled, interpreted)" s)

let engine_name = function `Compiled -> "compiled" | `Interpreted -> "interpreted"

let budget_of_name = function
  | "analytic" -> Ok `Analytic
  | "reuse" -> Ok `Reuse
  | "exact" -> Ok `Exact
  | s -> Error (Printf.sprintf "unknown budget '%s' (analytic, reuse, exact)" s)

let budget_name = function
  | `Analytic -> "analytic"
  | `Reuse -> "reuse"
  | `Exact -> "exact"

let evaluate_budget = function
  | `Analytic -> Bw_exec.Evaluate.Microseconds
  | `Reuse -> Bw_exec.Evaluate.Milliseconds
  | `Exact -> Bw_exec.Evaluate.Unbounded

let ( let* ) = Result.bind

let field_string name json =
  match Json.member name json with
  | None -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field '%s' must be a string" name)

let field_int name ~default json =
  match Json.member name json with
  | None -> Ok default
  | Some (Json.Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "field '%s' must be an integer" name)

let field_bool name ~default json =
  match Json.member name json with
  | None -> Ok default
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field '%s' must be a boolean" name)

let field_string_list name ~default json =
  match Json.member name json with
  | None -> Ok default
  | Some (Json.List items) ->
    let rec go = function
      | [] -> Ok []
      | Json.String s :: rest -> Result.map (fun ss -> s :: ss) (go rest)
      | _ ->
        Error (Printf.sprintf "field '%s' must be a list of strings" name)
    in
    go items
  | Some _ -> Error (Printf.sprintf "field '%s' must be a list of strings" name)

let pipeline_of_json json =
  match Json.member "pipeline" json with
  | None -> Ok default_pipeline
  | Some p ->
    let* validate = field_int "validate" ~default:0 p in
    let* lint = field_bool "lint" ~default:false p in
    let* fuel =
      match Json.member "fuel" p with
      | None | Some Json.Null -> Ok None
      | Some (Json.Int i) -> Ok (Some i)
      | Some _ -> Error "field 'fuel' must be an integer or null"
    in
    if validate < 0 then Error "field 'validate' must be >= 0"
    else Ok { validate; lint; fuel }

let request_of_json json =
  match json with
  | Json.Obj _ -> (
    let* v = field_int "v" ~default:version json in
    if v <> version then
      Error (Printf.sprintf "unsupported protocol version %d (this is v%d)" v version)
    else
      let* op_str = field_string "op" json in
      match op_str with
      | None -> Error "missing required field 'op'"
      | Some op_str -> (
        match op_of_name op_str with
        | None ->
          Error
            (Printf.sprintf "unknown op '%s' (known: %s)" op_str
               (String.concat ", " (List.map fst op_names)))
        | Some op ->
          let d = default_request op in
          let* id = field_string "id" json in
          let* program = field_string "program" json in
          let* source = field_string "source" json in
          let* scale = field_int "scale" ~default:d.scale json in
          let* machines = field_string_list "machines" ~default:d.machines json in
          let* engine_s = field_string "engine" json in
          let* engine =
            match engine_s with
            | None -> Ok d.engine
            | Some s -> engine_of_name s
          in
          let* budget_s = field_string "budget" json in
          let* budget =
            match budget_s with None -> Ok d.budget | Some s -> budget_of_name s
          in
          let* pipeline = pipeline_of_json json in
          let* seed = field_int "seed" ~default:d.seed json in
          let* count = field_int "count" ~default:d.count json in
          let* size = field_int "size" ~default:d.size json in
          let* no_cache = field_bool "no_cache" ~default:false json in
          let* deadline_ms =
            match Json.member "deadline_ms" json with
            | None | Some Json.Null -> Ok None
            | Some (Json.Int i) ->
              if i > 0 then Ok (Some i)
              else Error "field 'deadline_ms' must be > 0"
            | Some _ -> Error "field 'deadline_ms' must be an integer"
          in
          if scale < 1 || scale > 3 then Error "field 'scale' must be 1..3"
          else if count < 1 then Error "field 'count' must be >= 1"
          else if size < 1 then Error "field 'size' must be >= 1"
          else
            Ok
              { id; op; program; source; scale; machines; engine; budget;
                pipeline; seed; count; size; no_cache; deadline_ms }))
  | _ -> Error "request must be a JSON object"

let request_of_string line =
  match Json.parse line with
  | json -> request_of_json json
  | exception Json.Parse_error msg -> Error ("malformed JSON: " ^ msg)

let json_of_request r =
  let opt name = function
    | None -> []
    | Some s -> [ (name, Json.String s) ]
  in
  Json.Obj
    ([ ("v", Json.Int version); ("op", Json.String (op_name r.op)) ]
    @ opt "id" r.id @ opt "program" r.program @ opt "source" r.source
    @ [ ("scale", Json.Int r.scale);
        ("machines", Json.List (List.map (fun m -> Json.String m) r.machines));
        ("engine", Json.String (engine_name r.engine));
        ("budget", Json.String (budget_name r.budget));
        ( "pipeline",
          Json.Obj
            [ ("validate", Json.Int r.pipeline.validate);
              ("lint", Json.Bool r.pipeline.lint);
              ( "fuel",
                match r.pipeline.fuel with
                | None -> Json.Null
                | Some f -> Json.Int f ) ] );
        ("seed", Json.Int r.seed);
        ("count", Json.Int r.count);
        ("size", Json.Int r.size) ]
    @ (if r.no_cache then [ ("no_cache", Json.Bool true) ] else [])
    @
    match r.deadline_ms with
    | None -> []
    | Some ms -> [ ("deadline_ms", Json.Int ms) ])

(* --- responses ------------------------------------------------------------- *)

let ok_response ?id ?degraded ~op ~cached result =
  Json.Obj
    ([ ("v", Json.Int version) ]
    @ (match id with None -> [] | Some id -> [ ("id", Json.String id) ])
    @ [ ("op", Json.String (op_name op));
        ("status", Json.String "ok");
        ("cached", Json.Bool cached) ]
    @ (match degraded with
      | None -> []
      | Some fidelity ->
        [ ("degraded", Json.Bool true); ("fidelity", Json.String fidelity) ])
    @ [ ("result", result) ])

let error_response ?id ?code ?retry_after_ms msg =
  Json.Obj
    ([ ("v", Json.Int version) ]
    @ (match id with None -> [] | Some id -> [ ("id", Json.String id) ])
    @ [ ("status", Json.String "error"); ("error", Json.String msg) ]
    @ (match code with
      | None -> []
      | Some c -> [ ("code", Json.String c) ])
    @
    match retry_after_ms with
    | None -> []
    | Some ms -> [ ("retry_after_ms", Json.Int ms) ])

let response_result json =
  match Json.member "status" json with
  | Some (Json.String "ok") -> (
    match Json.member "result" json with
    | Some r -> Ok r
    | None -> Error "ok response without 'result'")
  | Some (Json.String "error") -> (
    match Json.member "error" json with
    | Some (Json.String msg) -> Error msg
    | _ -> Error "error response without 'error'")
  | _ -> Error "response without 'status'"

let response_cached json =
  match Json.member "cached" json with Some (Json.Bool b) -> b | _ -> false

let response_degraded json =
  match Json.member "degraded" json with Some (Json.Bool b) -> b | _ -> false

let response_error_code json =
  match Json.member "code" json with Some (Json.String c) -> Some c | _ -> None

let response_retry_after_ms json =
  match Json.member "retry_after_ms" json with
  | Some (Json.Int ms) -> Some ms
  | _ -> None

(* Everything whose answer is content-addressed (or answerless, like
   ping/metrics) can be resent without changing server state; only
   shutdown carries one-shot intent. *)
let idempotent req = req.op <> Shutdown

let degradable = function
  | Analyze | Predict -> true
  | Ping | Metrics | Optimize | Simulate | Fuzz | Shutdown -> false

(* --- cache keys ------------------------------------------------------------ *)

(* Content-addressed: the program component is the canonical IR digest
   (Bw_ir.Digest), so two requests naming the same computation share a
   key however the program was spelled, while every knob that changes
   the answer — op, machine list, engine, budget, pipeline config, fuzz
   parameters — is spelled into the key with unambiguous separators, so
   distinct configurations can never collide. *)

let pipeline_key p =
  Printf.sprintf "v%d:l%c:f%s" p.validate
    (if p.lint then '1' else '0')
    (match p.fuel with None -> "-" | Some f -> string_of_int f)

let cache_key req ~program =
  match req.op with
  | Ping | Metrics | Shutdown -> None
  | Fuzz ->
    Some
      (Printf.sprintf "v%d|fuzz|seed=%d|count=%d|size=%d" version req.seed
         req.count req.size)
  | Analyze | Predict | Optimize | Simulate ->
    let digest =
      match program with
      | Some p -> Bw_ir.Digest.program p
      | None -> "-"
    in
    Some
      (Printf.sprintf "v%d|%s|prog=%s|machines=%s|engine=%s|budget=%s|pipe=%s"
         version (op_name req.op) digest
         (String.concat "," req.machines)
         (engine_name req.engine) (budget_name req.budget)
         (pipeline_key req.pipeline))

(* Key of the shared capture (program execution) behind simulate
   requests: machine-independent, so requests that differ only in
   machine list share one engine run. *)
let capture_key req ~program =
  Printf.sprintf "capture|prog=%s|engine=%s" (Bw_ir.Digest.program program)
    (engine_name req.engine)

let needs_program req =
  match req.op with
  | Analyze | Predict | Optimize | Simulate -> true
  | Ping | Metrics | Shutdown | Fuzz -> false

let load_program req =
  match (req.program, req.source) with
  | Some _, Some _ -> Error "give either 'program' or 'source', not both"
  | Some name, None -> Bw_core.Loader.load_program ~scale:req.scale name
  | None, Some src -> (
    (* position-tracking front end: errors render as LINE:COL: message *)
    match Bw_lang.Parse.parse_program src with
    | Ok p -> Ok p
    | Error e -> Error (Bw_lang.Parse.error_to_string e)
    | exception e -> Error (Printexc.to_string e))
  | None, None ->
    Error
      (Printf.sprintf "op '%s' needs a 'program' (registry name) or 'source'"
         (op_name req.op))
