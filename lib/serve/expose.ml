(* Plain-text metrics exposition in the Prometheus line format:
   metric names with '.' mapped to '_', one "name value" line per
   counter/gauge, and histograms flattened to _count/_sum plus
   cumulative _bucket{le="..."} lines. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let render () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (s : Bw_obs.Metrics.snapshot) ->
      let name = sanitize s.Bw_obs.Metrics.metric in
      match s.Bw_obs.Metrics.data with
      | Bw_obs.Metrics.Counter_v v ->
        Buffer.add_string buf (Printf.sprintf "%s %d\n" name v)
      | Bw_obs.Metrics.Gauge_v v ->
        Buffer.add_string buf (Printf.sprintf "%s %s\n" name (float_repr v))
      | Bw_obs.Metrics.Hist_v h ->
        Buffer.add_string buf
          (Printf.sprintf "%s_count %d\n" name h.Bw_obs.Metrics.count);
        Buffer.add_string buf
          (Printf.sprintf "%s_sum %s\n" name
             (float_repr h.Bw_obs.Metrics.sum));
        let cum = ref 0 in
        List.iter
          (fun (ub, n) ->
            cum := !cum + n;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name
                 (float_repr ub) !cum))
          h.Bw_obs.Metrics.buckets)
    (Bw_obs.Metrics.snapshot ());
  Buffer.contents buf
