(** Load generator: client domains driving a seeded mixed request
    stream against a running server, reporting latency percentiles,
    throughput, per-outcome counts, and the observed cache hit rate.
    Backs the serve bench ([bench/main.ml --serve]), [bwc client
    --load], and — in [chaos] mode — the chaos harness behind
    [bwc client --load --chaos].

    In chaos mode each client domain is a {!Client.resilient} retrying
    client and the stream is tilted at the resilience machinery (a
    slice of tight [deadline_ms] requests, a slice of [no_cache] so
    work actually reaches the possibly-crashing pool).  The pass
    criterion for a chaos run is [failed = 0]: every request either
    answered (full-fidelity or degraded) or structurally rejected —
    no hangs, no unexplained transport failures. *)

type spec = {
  addr : Server.addr;
  clients : int;  (** client domains, each with its own connection *)
  requests : int;  (** total across all clients *)
  seed : int;  (** stream seed — same seed, same request stream *)
  scale : int;  (** workload scale passed in each request *)
  chaos : bool;  (** resilient clients + fault-hunting stream *)
  timeout_s : float;  (** per-attempt socket timeout (chaos mode) *)
  retries : int;  (** retries per request (chaos mode) *)
}

(** 2 clients, 1000 requests, seed 42, scale 1, no chaos (10 s
    timeout and 3 retries once chaos is switched on). *)
val default_spec : Server.addr -> spec

(** Latency distribution of one outcome class. *)
type bucket = {
  count : int;
  b_p50_ms : float;
  b_p90_ms : float;
  b_p99_ms : float;
  b_max_ms : float;
}

type stats = {
  requests : int;
  clients : int;
  errors : int;
      (** anything that was not an ok answer: rejections, error
          replies, transport failures *)
  cached : int;  (** responses answered from the result cache *)
  hit_rate : float;
  wall_seconds : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  ok : int;  (** full-fidelity answers *)
  degraded : int;  (** analytic-tier answers under load shed *)
  rejected : int;
      (** structured rejections: [overloaded], [deadline_exceeded],
          [shutting_down], [request_too_large] *)
  shed : int;  (** the [overloaded] subset of [rejected] *)
  failed : int;  (** transport failures, after retries — hangs/crashes *)
  retried : int;  (** total client retries consumed *)
  by_outcome : (string * bucket) list;
      (** per-outcome latency percentiles, keyed [ok]/[degraded]/
          [rejected]/[error]/[failed] *)
}

(** Run the load; blocks until every client finishes. *)
val run : spec -> stats

val json_of_stats : stats -> Bw_core.Json.t
