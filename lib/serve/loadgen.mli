(** Load generator: client domains driving a seeded mixed request
    stream against a running server, reporting latency percentiles,
    throughput, and the observed cache hit rate.  Backs the serve
    bench ([bench/main.ml --serve]) and [bwc client --load]. *)

type spec = {
  addr : Server.addr;
  clients : int;  (** client domains, each with its own connection *)
  requests : int;  (** total across all clients *)
  seed : int;  (** stream seed — same seed, same request stream *)
  scale : int;  (** workload scale passed in each request *)
}

(** 2 clients, 1000 requests, seed 42, scale 1. *)
val default_spec : Server.addr -> spec

type stats = {
  requests : int;
  clients : int;
  errors : int;  (** transport failures or error-status responses *)
  cached : int;  (** responses answered from the result cache *)
  hit_rate : float;
  wall_seconds : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

(** Run the load; blocks until every client finishes. *)
val run : spec -> stats

val json_of_stats : stats -> Bw_core.Json.t
