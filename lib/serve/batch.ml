(* Cross-request batching of simulate work onto Run.replay_many.

   Concurrent simulate requests that share a capture (same program
   digest × engine) but ask for different machines are grouped: the
   first arrival becomes the group's leader, obtains the capture once,
   and repeatedly drains whatever requests have queued behind it,
   fanning the union of their machine lists out through one
   Run.replay_many call per drained batch.  Followers block until the
   leader distributes their per-machine results.  Under load this turns
   N concurrent requests into one engine run and ceil-fewer replay
   fan-outs; when idle it degenerates to exactly the work a lone
   request would have done. *)

type waiter = {
  wm : Mutex.t;
  wc : Condition.t;
  machines : Bw_machine.Machine.t list;
  mutable outcome : outcome;
}

and outcome =
  | Waiting
  | Served of Bw_exec.Run.result list  (* in [machines] order *)
  | Failed of exn  (* this waiter's own attempt failed *)
  | Orphaned of exn  (* the group's leader failed; retry individually *)

type group = { mutable leader : bool; mutable pending : waiter list }

type t = {
  m : Mutex.t;
  groups : (string, group) Hashtbl.t;
  jobs : int option;  (* worker cap handed to Run.replay_many *)
}

let create ?jobs () = { m = Mutex.create (); groups = Hashtbl.create 8; jobs }

let requests_c = Bw_obs.Metrics.counter "serve.batch.requests"
let replays_c = Bw_obs.Metrics.counter "serve.batch.replays"
let grouped_c = Bw_obs.Metrics.counter "serve.batch.grouped"
let orphaned_c = Bw_obs.Metrics.counter "serve.batch.orphaned"

let settle w outcome =
  Mutex.lock w.wm;
  w.outcome <- outcome;
  Condition.broadcast w.wc;
  Mutex.unlock w.wm

let await w =
  Mutex.lock w.wm;
  let pending () = match w.outcome with Waiting -> true | _ -> false in
  while pending () do
    Condition.wait w.wc w.wm
  done;
  let o = w.outcome in
  Mutex.unlock w.wm;
  o

(* Union of the batch's machine lists, deduplicated by machine name,
   first-arrival order preserved (deterministic given arrival order). *)
let union_machines batch =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun w ->
      List.filter
        (fun (m : Bw_machine.Machine.t) ->
          if Hashtbl.mem seen m.Bw_machine.Machine.name then false
          else begin
            Hashtbl.add seen m.Bw_machine.Machine.name ();
            true
          end)
        w.machines)
    batch

let drain t key g =
  Mutex.lock t.m;
  let batch = List.rev g.pending in
  g.pending <- [];
  if batch = [] then begin
    g.leader <- false;
    Hashtbl.remove t.groups key;
    Mutex.unlock t.m;
    None
  end
  else begin
    Mutex.unlock t.m;
    Some batch
  end

(* A leader failure must not take its followers down with it: the
   leader's own waiter fails (the exception belongs to its attempt),
   but every other drained waiter is merely {e orphaned} — it retries
   individually in [simulate] below, typically electing a new leader
   whose capture attempt is independent of the one that died. *)
let fail_all t key g ~leader e =
  let rec go () =
    match drain t key g with
    | None -> ()
    | Some batch ->
      List.iter
        (fun w -> settle w (if w == leader then Failed e else Orphaned e))
        batch;
      go ()
  in
  go ()

let serve_batches t key g ~leader capture =
  let rec go () =
    match drain t key g with
    | None -> ()
    | Some batch -> (
      let machines = union_machines batch in
      match Bw_exec.Run.replay_many ?jobs:t.jobs ~machines capture with
      | results ->
        Bw_obs.Metrics.incr replays_c;
        if List.length batch > 1 then
          Bw_obs.Metrics.incr ~by:(List.length batch - 1) grouped_c;
        let by_name =
          List.map2
            (fun (m : Bw_machine.Machine.t) r ->
              (m.Bw_machine.Machine.name, r))
            machines results
        in
        List.iter
          (fun w ->
            settle w
              (Served
                 (List.map
                    (fun (m : Bw_machine.Machine.t) ->
                      List.assoc m.Bw_machine.Machine.name by_name)
                    w.machines)))
          batch;
        go ()
      | exception e ->
        List.iter
          (fun w -> settle w (if w == leader then Failed e else Orphaned e))
          batch;
        (* the group is poisoned for this leader; release the rest *)
        fail_all t key g ~leader e)
  in
  go ()

let simulate t ~key ~capture machines =
  Bw_obs.Metrics.incr requests_c;
  (* One individual retry after an orphaning: the retry either becomes
     its own leader (fresh capture attempt) or rides a healthy new
     group; a second orphaning means the failure is not specific to the
     dead leader, so it propagates. *)
  let rec attempt retries =
    let w =
      { wm = Mutex.create ();
        wc = Condition.create ();
        machines;
        outcome = Waiting }
    in
    Mutex.lock t.m;
    let g =
      match Hashtbl.find_opt t.groups key with
      | Some g -> g
      | None ->
        let g = { leader = false; pending = [] } in
        Hashtbl.add t.groups key g;
        g
    in
    g.pending <- w :: g.pending;
    let outcome =
      if g.leader then begin
        (* somebody is already replaying this capture; ride along *)
        Mutex.unlock t.m;
        await w
      end
      else begin
        g.leader <- true;
        Mutex.unlock t.m;
        (match capture () with
        | c -> serve_batches t key g ~leader:w c
        | exception e -> fail_all t key g ~leader:w e);
        await w
      end
    in
    match outcome with
    | Served results -> results
    | Failed e -> raise e
    | Orphaned e ->
      Bw_obs.Metrics.incr orphaned_c;
      if retries > 0 then attempt (retries - 1) else raise e
    | Waiting -> assert false
  in
  attempt 1
