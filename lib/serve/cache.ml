(* Bounded, LRU-evicting, single-flight result cache.  See cache.mli. *)

type 'a entry = { value : 'a; mutable tick : int }

type 'a t = {
  m : Mutex.t;
  c : Condition.t;  (* signalled when an in-flight computation settles *)
  table : (string, 'a entry) Hashtbl.t;
  in_flight : (string, unit) Hashtbl.t;
  capacity : int;
  mutable clock : int;
  metric_prefix : string;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable joins : int;
}

let metric t name by =
  Bw_obs.Metrics.incr ~by (Bw_obs.Metrics.counter (t.metric_prefix ^ name))

let create ?(metric_prefix = "serve.cache.") ~capacity () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { m = Mutex.create ();
    c = Condition.create ();
    table = Hashtbl.create (min capacity 64);
    in_flight = Hashtbl.create 8;
    capacity;
    clock = 0;
    metric_prefix;
    hits = 0;
    misses = 0;
    evictions = 0;
    joins = 0 }

let touch t e =
  t.clock <- t.clock + 1;
  e.tick <- t.clock

(* Evict the least-recently-used entry.  O(table size) scan: capacities
   are small (hundreds) and eviction happens at most once per insert. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, tick) when tick <= e.tick -> acc
        | _ -> Some (k, e.tick))
      t.table None
  in
  match victim with
  | Some (k, _) ->
    Hashtbl.remove t.table k;
    t.evictions <- t.evictions + 1;
    metric t "eviction" 1
  | None -> ()

let insert t key value =
  if not (Hashtbl.mem t.table key) then begin
    while Hashtbl.length t.table >= t.capacity do
      evict_one t
    done;
    let e = { value; tick = 0 } in
    touch t e;
    Hashtbl.add t.table key e
  end

(* The single-flight protocol: under the lock, either the value is
   cached (hit), or somebody is computing it (wait on the condition,
   then re-check), or we claim it ourselves by marking it in-flight.
   The computation itself runs unlocked; completion — success or
   exception — clears the mark and broadcasts.  A failed computation
   caches nothing: one of the waiters becomes the next computer, so a
   transient failure cannot poison the key. *)
let find_or_compute t ~key f =
  Mutex.lock t.m;
  let rec claim ~joined =
    match Hashtbl.find_opt t.table key with
    | Some e ->
      touch t e;
      t.hits <- t.hits + 1;
      metric t "hit" 1;
      if joined then begin
        t.joins <- t.joins + 1;
        metric t "join" 1
      end;
      Mutex.unlock t.m;
      (e.value, if joined then `Joined else `Hit)
    | None ->
      if Hashtbl.mem t.in_flight key then begin
        Condition.wait t.c t.m;
        claim ~joined:true
      end
      else begin
        Hashtbl.add t.in_flight key ();
        t.misses <- t.misses + 1;
        metric t "miss" 1;
        Mutex.unlock t.m;
        let outcome = try Ok (f ()) with e -> Error e in
        Mutex.lock t.m;
        Hashtbl.remove t.in_flight key;
        (match outcome with Ok v -> insert t key v | Error _ -> ());
        Condition.broadcast t.c;
        Mutex.unlock t.m;
        (match outcome with
        | Ok v -> (v, `Miss)
        | Error e -> raise e)
      end
  in
  claim ~joined:false

let find t key =
  Mutex.lock t.m;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some e ->
      touch t e;
      t.hits <- t.hits + 1;
      metric t "hit" 1;
      Some e.value
    | None -> None
  in
  Mutex.unlock t.m;
  r

type stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  single_flight_joins : int;
}

let stats t =
  Mutex.lock t.m;
  let s =
    { size = Hashtbl.length t.table;
      capacity = t.capacity;
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      single_flight_joins = t.joins }
  in
  Mutex.unlock t.m;
  s

let mem t key =
  Mutex.lock t.m;
  let r = Hashtbl.mem t.table key in
  Mutex.unlock t.m;
  r
