(** Pure compute behind each serve op: request in, JSON result payload
    out.  No sockets, no caching, no pool — {!Server} supplies those;
    tests call these directly.

    Every function is deterministic in its arguments (the property the
    result cache relies on) and safe to run concurrently with itself on
    other domains. *)

module Json = Bw_core.Json

val analyze :
  Protocol.request ->
  machines:Bw_machine.Machine.t list ->
  Bw_ir.Ast.program ->
  Json.t

val predict :
  Protocol.request ->
  machines:Bw_machine.Machine.t list ->
  Bw_ir.Ast.program ->
  Json.t

(** Runs the guarded pipeline under the request's [pipeline] config and
    simulates before/after on the {e first} requested machine. *)
val optimize :
  Protocol.request ->
  machines:Bw_machine.Machine.t list ->
  Bw_ir.Ast.program ->
  Json.t

(** [replay] maps the machine list to per-machine results; the server
    passes its capture-sharing batcher here.  Without it, a private
    capture is taken and replayed. *)
val simulate :
  ?replay:(Bw_machine.Machine.t list -> Bw_exec.Run.result list) ->
  Protocol.request ->
  machines:Bw_machine.Machine.t list ->
  Bw_ir.Ast.program ->
  Json.t

val fuzz : Protocol.request -> Json.t

(** Dispatch on the request's op.  Ping/Metrics/Shutdown are server-loop
    concerns and raise [Invalid_argument] here. *)
val compute :
  ?replay:(Bw_machine.Machine.t list -> Bw_exec.Run.result list) ->
  Protocol.request ->
  machines:Bw_machine.Machine.t list ->
  Bw_ir.Ast.program option ->
  Json.t
