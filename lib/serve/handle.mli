(** Pure compute behind each serve op: request in, JSON result payload
    out.  No sockets, no caching, no pool — {!Server} supplies those;
    tests call these directly.

    Every function is deterministic in its arguments (the property the
    result cache relies on) and safe to run concurrently with itself on
    other domains.

    [deadline] is an absolute [Unix.gettimeofday] instant.  It is
    checked at tier boundaries — before each per-machine evaluation,
    each simulation, each fuzz iteration — and an expired deadline
    raises {!Deadline_exceeded} instead of finishing work nobody will
    wait for.  Passing no deadline disables all checks. *)

module Json = Bw_core.Json

(** Raised by any compute function once its [deadline] has passed. *)
exception Deadline_exceeded

(** [check_deadline (Some d)] raises {!Deadline_exceeded} when the
    current time is past [d]; the server also calls this at dequeue so
    an already-expired request is never computed at all. *)
val check_deadline : float option -> unit

val analyze :
  ?deadline:float ->
  Protocol.request ->
  machines:Bw_machine.Machine.t list ->
  Bw_ir.Ast.program ->
  Json.t

val predict :
  ?deadline:float ->
  Protocol.request ->
  machines:Bw_machine.Machine.t list ->
  Bw_ir.Ast.program ->
  Json.t

(** Runs the guarded pipeline under the request's [pipeline] config and
    simulates before/after on the {e first} requested machine. *)
val optimize :
  ?deadline:float ->
  Protocol.request ->
  machines:Bw_machine.Machine.t list ->
  Bw_ir.Ast.program ->
  Json.t

(** [replay] maps the machine list to per-machine results; the server
    passes its capture-sharing batcher here.  Without it, a private
    capture is taken and replayed. *)
val simulate :
  ?deadline:float ->
  ?replay:(Bw_machine.Machine.t list -> Bw_exec.Run.result list) ->
  Protocol.request ->
  machines:Bw_machine.Machine.t list ->
  Bw_ir.Ast.program ->
  Json.t

val fuzz : ?deadline:float -> Protocol.request -> Json.t

(** Dispatch on the request's op.  Ping/Metrics/Shutdown are server-loop
    concerns and raise [Invalid_argument] here. *)
val compute :
  ?deadline:float ->
  ?replay:(Bw_machine.Machine.t list -> Bw_exec.Run.result list) ->
  Protocol.request ->
  machines:Bw_machine.Machine.t list ->
  Bw_ir.Ast.program option ->
  Json.t

(** The load-shed answer: evaluate on the analytic tier regardless of
    the requested budget (microseconds of work, [predict]-shaped
    payload).  The caller is responsible for tagging the response
    [degraded] and for keeping it out of the result cache. *)
val degraded :
  Protocol.request ->
  machines:Bw_machine.Machine.t list ->
  Bw_ir.Ast.program ->
  Json.t
