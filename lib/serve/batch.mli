(** Cross-request batching of simulate work onto
    {!Bw_exec.Run.replay_many}.

    Concurrent simulate requests sharing a capture key (program digest
    × engine — {!Protocol.capture_key}) are grouped: the first arrival
    leads, obtains the capture once (the thunk normally goes through
    the server's capture cache), and drains queued requests in waves,
    replaying the union of their machine lists with one
    [Run.replay_many] fan-out per wave.  Followers block until their
    results are distributed.  An idle-time request does exactly the
    work it would have done alone.

    Counted in {!Bw_obs.Metrics}: [serve.batch.requests] (calls),
    [serve.batch.replays] (fan-outs executed), [serve.batch.grouped]
    (requests served by another request's fan-out). *)

type t

(** [jobs] caps the domains each [replay_many] fan-out spawns. *)
val create : ?jobs:int -> unit -> t

(** [simulate t ~key ~capture machines] returns per-machine results in
    [machines] order.  [capture] runs at most once per concurrent
    group.  Exceptions from the capture or replay propagate to every
    request they affect. *)
val simulate :
  t ->
  key:string ->
  capture:(unit -> Bw_exec.Run.capture) ->
  Bw_machine.Machine.t list ->
  Bw_exec.Run.result list
