(** Cross-request batching of simulate work onto
    {!Bw_exec.Run.replay_many}.

    Concurrent simulate requests sharing a capture key (program digest
    × engine — {!Protocol.capture_key}) are grouped: the first arrival
    leads, obtains the capture once (the thunk normally goes through
    the server's capture cache), and drains queued requests in waves,
    replaying the union of their machine lists with one
    [Run.replay_many] fan-out per wave.  Followers block until their
    results are distributed.  An idle-time request does exactly the
    work it would have done alone.

    A failing leader never strands its followers: if the leader's
    capture (or a wave's replay) raises, the exception fails only the
    leader's own request, while every follower it had drained is
    {e orphaned} and silently retries once on its own — electing a new
    leader with an independent capture attempt — before giving up.
    Followers are therefore never left blocked on a dead leader.

    Counted in {!Bw_obs.Metrics}: [serve.batch.requests] (calls),
    [serve.batch.replays] (fan-outs executed), [serve.batch.grouped]
    (requests served by another request's fan-out),
    [serve.batch.orphaned] (followers released by a failing leader). *)

type t

(** [jobs] caps the domains each [replay_many] fan-out spawns. *)
val create : ?jobs:int -> unit -> t

(** [simulate t ~key ~capture machines] returns per-machine results in
    [machines] order.  [capture] runs at most once per concurrent
    group.  An exception from the capture or replay propagates to the
    leading request; followers retry once individually (re-running
    [capture]) before the exception propagates to them too. *)
val simulate :
  t ->
  key:string ->
  capture:(unit -> Bw_exec.Run.capture) ->
  Bw_machine.Machine.t list ->
  Bw_exec.Run.result list
