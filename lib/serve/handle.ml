(* Pure compute behind each serve op: request in, result payload out.
   No sockets, no cache, no pool — the server wraps these in its
   concurrency machinery, and the tests call them directly. *)

module Json = Bw_core.Json

exception Deadline_exceeded

(* Deadlines are absolute [Unix.gettimeofday] instants (the server
   computes them at admission); checks sit at tier boundaries — before
   each per-machine evaluation, each simulation, each fuzz iteration —
   so an expired request stops at the next coarse-grained step instead
   of being computed to completion and thrown away. *)
let check_deadline = function
  | None -> ()
  | Some d -> if Unix.gettimeofday () > d then raise Deadline_exceeded

let mb bytes = float_of_int bytes /. 1e6

let run_json (r : Bw_exec.Run.result) =
  let counters = r.Bw_exec.Run.counters in
  let row =
    { Bw_core.Balance.name = "";
      per_boundary = Bw_exec.Run.program_balance r }
  in
  let machine = r.Bw_exec.Run.machine in
  let resource, ratio = Bw_core.Balance.worst_ratio row machine in
  Json.Obj
    [ ("machine", Json.String machine.Bw_machine.Machine.name);
      ("seconds", Json.Float (Bw_exec.Run.seconds r));
      ( "effective_bandwidth_mbs",
        Json.Float (Bw_exec.Run.effective_bandwidth r /. 1e6) );
      ( "memory_mb",
        Json.Float (mb (Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache)) );
      ( "counters",
        Json.Obj
          [ ("flops", Json.Int counters.Bw_machine.Counters.flops);
            ("loads", Json.Int counters.Bw_machine.Counters.loads);
            ("stores", Json.Int counters.Bw_machine.Counters.stores) ] );
      ( "balance",
        Json.Obj
          (List.map
             (fun (b, v) -> (b, Json.Float v))
             (Bw_exec.Run.program_balance r)) );
      ( "bound",
        Json.Obj
          [ ("resource", Json.String resource);
            ("demand_supply_ratio", Json.Float ratio);
            ( "cpu_utilisation",
              Json.Float (Bw_core.Balance.cpu_utilisation_bound row machine) )
          ] ) ]

(* --- analyze --------------------------------------------------------------- *)

let analyze ?deadline (req : Protocol.request) ~machines p =
  check_deadline deadline;
  let results =
    Bw_exec.Run.simulate_many ~engine:req.Protocol.engine ~machines p
  in
  Json.Obj
    [ ("program", Json.String p.Bw_ir.Ast.prog_name);
      ("results", Json.List (List.map run_json results)) ]

(* --- predict --------------------------------------------------------------- *)

let predict ?deadline (req : Protocol.request) ~machines p =
  let budget = Protocol.evaluate_budget req.Protocol.budget in
  let rows =
    List.map
      (fun machine ->
        check_deadline deadline;
        let e = Bw_exec.Evaluate.of_program ~budget ~machine p in
        Json.Obj
          [ ("machine", Json.String e.Bw_exec.Evaluate.machine_name);
            ( "fidelity",
              Json.String
                (Bw_exec.Evaluate.fidelity_name e.Bw_exec.Evaluate.fidelity) );
            ("seconds", Json.Float e.Bw_exec.Evaluate.seconds);
            ("memory_mb", Json.Float (Bw_exec.Evaluate.memory_bytes e /. 1e6));
            ( "binding_resource",
              Json.String e.Bw_exec.Evaluate.binding_resource ) ])
      machines
  in
  Json.Obj
    [ ("program", Json.String p.Bw_ir.Ast.prog_name);
      ("budget", Json.String (Protocol.budget_name req.Protocol.budget));
      ("results", Json.List rows) ]

(* --- optimize -------------------------------------------------------------- *)

let verdict_json = function
  | Bw_transform.Guard.Committed -> Json.String "committed"
  | Bw_transform.Guard.Rolled_back failure ->
    Json.Obj
      [ ( "rolled_back",
          Json.String
            (Format.asprintf "%a" Bw_transform.Guard.pp_failure failure) ) ]

let optimize ?deadline (req : Protocol.request) ~machines p =
  let pl = req.Protocol.pipeline in
  let guard =
    { Bw_transform.Guard.default_config with
      Bw_transform.Guard.validate = pl.Protocol.validate;
      lint = pl.Protocol.lint;
      fuel = pl.Protocol.fuel }
  in
  let machine = List.hd machines in
  check_deadline deadline;
  let p', report, events =
    Bw_transform.Strategy.run_guarded ~guard ~machine p
  in
  check_deadline deadline;
  let before = Bw_exec.Run.simulate ~engine:req.Protocol.engine ~machine p in
  check_deadline deadline;
  let after = Bw_exec.Run.simulate ~engine:req.Protocol.engine ~machine p' in
  let traffic (r : Bw_exec.Run.result) =
    mb (Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache)
  in
  Json.Obj
    [ ("program", Json.String p.Bw_ir.Ast.prog_name);
      ("machine", Json.String machine.Bw_machine.Machine.name);
      ( "report",
        Json.Obj
          [ ( "fused_loops",
              Json.Int report.Bw_transform.Strategy.fused_loops );
            ( "contracted",
              Json.List
                (List.map
                   (fun s -> Json.String s)
                   report.Bw_transform.Strategy.contracted) );
            ( "stores_eliminated",
              Json.List
                (List.map
                   (fun s -> Json.String s)
                   report.Bw_transform.Strategy.stores_eliminated) );
            ("forwarded", Json.Int report.Bw_transform.Strategy.forwarded) ] );
      ( "events",
        Json.List
          (List.map
             (fun (e : Bw_transform.Guard.event) ->
               Json.Obj
                 [ ("stage", Json.String e.Bw_transform.Guard.stage);
                   ("verdict", verdict_json e.Bw_transform.Guard.verdict) ])
             events) );
      ("memory_mb_before", Json.Float (traffic before));
      ("memory_mb_after", Json.Float (traffic after));
      ("seconds_before", Json.Float (Bw_exec.Run.seconds before));
      ("seconds_after", Json.Float (Bw_exec.Run.seconds after));
      ( "speedup",
        Json.Float (Bw_exec.Run.seconds before /. Bw_exec.Run.seconds after) );
      ( "behaviour_preserved",
        Json.Bool
          (Bw_exec.Interp.equal_observation before.Bw_exec.Run.observation
             after.Bw_exec.Run.observation) );
      ("optimized", Json.String (Bw_ir.Pretty.program_to_string p')) ]

(* --- simulate -------------------------------------------------------------- *)

(* The server passes [replay]: a function that turns the machine list
   into per-machine results — normally the batcher, which shares one
   capture and one [Run.replay_many] fan-out across concurrent
   requests.  The fallback used by direct callers is a plain
   capture-and-replay. *)

let simulate_payload p results =
  Json.Obj
    [ ("program", Json.String p.Bw_ir.Ast.prog_name);
      ( "results",
        Json.List
          (List.map
             (fun (r : Bw_exec.Run.result) ->
               Json.Obj
                 [ ( "machine",
                     Json.String
                       r.Bw_exec.Run.machine.Bw_machine.Machine.name );
                   ("seconds", Json.Float (Bw_exec.Run.seconds r));
                   ( "effective_bandwidth_mbs",
                     Json.Float (Bw_exec.Run.effective_bandwidth r /. 1e6) );
                   ( "memory_mb",
                     Json.Float
                       (mb
                          (Bw_machine.Timing.memory_bytes r.Bw_exec.Run.cache))
                   ) ])
             results) ) ]

let simulate ?deadline ?replay (req : Protocol.request) ~machines p =
  check_deadline deadline;
  let results =
    match replay with
    | Some f -> f machines
    | None ->
      Bw_exec.Run.replay_many ~machines
        (Bw_exec.Run.capture ~engine:req.Protocol.engine p)
  in
  simulate_payload p results

(* --- fuzz ------------------------------------------------------------------ *)

let fuzz ?deadline (req : Protocol.request) =
  let failure = ref None in
  let k = ref 0 in
  while !failure = None && !k < req.Protocol.count do
    check_deadline deadline;
    let seed = req.Protocol.seed + !k in
    let p = Bw_qa.Gen.generate ~seed ~size:req.Protocol.size in
    (match Bw_qa.Oracle.test p with
    | Ok () -> ()
    | Error msg -> failure := Some (seed, p, msg));
    incr k
  done;
  Json.Obj
    ([ ("programs", Json.Int !k);
       ("seed", Json.Int req.Protocol.seed);
       ("size", Json.Int req.Protocol.size);
       ("ok", Json.Bool (!failure = None)) ]
    @
    match !failure with
    | None -> []
    | Some (seed, p, msg) ->
      [ ( "counterexample",
          Json.Obj
            [ ("seed", Json.Int seed);
              ("message", Json.String msg);
              ("program", Json.String (Bw_ir.Pretty.program_to_string p)) ] )
      ])

(* --- dispatch -------------------------------------------------------------- *)

(* Compute the result payload for one request.  [replay] lets the
   server thread simulate requests through its batcher; everything else
   is self-contained.  Ping/Metrics/Shutdown are server concerns and
   never reach this function. *)
let compute ?deadline ?replay (req : Protocol.request) ~machines
    (program : Bw_ir.Ast.program option) =
  match (req.Protocol.op, program) with
  | Protocol.Analyze, Some p -> analyze ?deadline req ~machines p
  | Protocol.Predict, Some p -> predict ?deadline req ~machines p
  | Protocol.Optimize, Some p -> optimize ?deadline req ~machines p
  | Protocol.Simulate, Some p -> simulate ?deadline ?replay req ~machines p
  | Protocol.Fuzz, _ -> fuzz ?deadline req
  | (Protocol.Ping | Protocol.Metrics | Protocol.Shutdown), _
  | _, None ->
    invalid_arg "Handle.compute: op handled by the server loop"

(* Under overload the server answers degradable ops from the analytic
   tier regardless of the requested budget: same payload shape as
   [predict], microseconds of work, honestly tagged by the caller. *)
let degraded (req : Protocol.request) ~machines p =
  predict { req with Protocol.budget = `Analytic } ~machines p
