(* Load generator for the serve bench and the CI smoke: N client
   domains hammer a running server with a seeded mixed request stream
   and we report latency percentiles, throughput, error count, and the
   observed cache hit rate. *)

module Json = Bw_core.Json

type spec = {
  addr : Server.addr;
  clients : int;
  requests : int;
  seed : int;
  scale : int;
}

let default_spec addr =
  { addr; clients = 2; requests = 1000; seed = 42; scale = 1 }

type stats = {
  requests : int;
  clients : int;
  errors : int;
  cached : int;
  hit_rate : float;
  wall_seconds : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

(* One sample per completed request. *)
type sample = { latency_ms : float; was_cached : bool; ok : bool }

(* The mixed stream draws from a deliberately bounded universe of
   request shapes so that a warmed-up run exercises the result cache:
   a handful of registry programs × machine subsets × ops. *)
let programs = [| "read_loop"; "write_loop"; "convolution"; "fig7" |]

let machine_sets =
  [| [ "origin2000" ];
     [ "exemplar" ];
     [ "origin2000"; "exemplar" ];
     [ "unconstrained" ] |]

let pick rng a = a.(Random.State.int rng (Array.length a))

let random_request rng ~scale =
  let program = Some (pick rng programs) in
  let machines = pick rng machine_sets in
  (* weighted op mix: mostly analyze/predict/simulate, some optimize,
     a sprinkle of fuzz and ping *)
  match Random.State.int rng 100 with
  | n when n < 30 ->
    { (Protocol.default_request Protocol.Analyze) with program; machines; scale }
  | n when n < 60 ->
    let budget =
      pick rng [| `Analytic; `Reuse; `Exact |]
    in
    { (Protocol.default_request Protocol.Predict) with
      program; machines; scale; budget }
  | n when n < 85 ->
    { (Protocol.default_request Protocol.Simulate) with program; machines; scale }
  | n when n < 93 ->
    { (Protocol.default_request Protocol.Optimize) with
      program; machines = [ List.hd machines ]; scale }
  | n when n < 97 ->
    { (Protocol.default_request Protocol.Fuzz) with
      seed = Random.State.int rng 4; count = 2; size = 3 }
  | _ -> Protocol.default_request Protocol.Ping

let client_run (spec : spec) ~client_id ~count =
  let rng = Random.State.make [| spec.seed; client_id |] in
  let client = Client.connect spec.addr in
  let samples = Array.make count { latency_ms = 0.; was_cached = false; ok = false } in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      for i = 0 to count - 1 do
        let req = random_request rng ~scale:spec.scale in
        let t0 = Unix.gettimeofday () in
        let reply = Client.request client req in
        let latency_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
        let was_cached, ok =
          match reply with
          | Ok j -> (
            ( Protocol.response_cached j,
              match Protocol.response_result j with
              | Ok _ -> true
              | Error _ ->
                (* fuzz counterexamples etc. are still valid replies;
                   only transport or envelope errors count as failures *)
                false ))
          | Error _ -> (false, false)
        in
        samples.(i) <- { latency_ms; was_cached; ok }
      done;
      samples)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let run (spec : spec) =
  if spec.clients < 1 then invalid_arg "Loadgen.run: clients < 1";
  if spec.requests < 1 then invalid_arg "Loadgen.run: requests < 1";
  let per_client = spec.requests / spec.clients in
  let counts =
    (* distribute the remainder over the first few clients *)
    Array.init spec.clients (fun i ->
        per_client + if i < spec.requests mod spec.clients then 1 else 0)
  in
  let t0 = Unix.gettimeofday () in
  let domains =
    Array.mapi
      (fun i count ->
        Domain.spawn (fun () -> client_run spec ~client_id:i ~count))
      counts
  in
  let samples = Array.concat (Array.to_list (Array.map Domain.join domains)) in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let latencies =
    Array.map (fun s -> s.latency_ms) (Array.copy samples)
  in
  Array.sort compare latencies;
  let errors =
    Array.fold_left (fun acc s -> if s.ok then acc else acc + 1) 0 samples
  in
  let cached =
    Array.fold_left (fun acc s -> if s.was_cached then acc + 1 else acc) 0 samples
  in
  let n = Array.length samples in
  { requests = n;
    clients = spec.clients;
    errors;
    cached;
    hit_rate = (if n = 0 then 0. else float_of_int cached /. float_of_int n);
    wall_seconds;
    throughput_rps =
      (if wall_seconds > 0. then float_of_int n /. wall_seconds else 0.);
    p50_ms = percentile latencies 50.;
    p90_ms = percentile latencies 90.;
    p99_ms = percentile latencies 99.;
    max_ms = (if n = 0 then 0. else latencies.(n - 1)) }

let json_of_stats s =
  Json.Obj
    [ ("requests", Json.Int s.requests);
      ("clients", Json.Int s.clients);
      ("errors", Json.Int s.errors);
      ("cached", Json.Int s.cached);
      ("hit_rate", Json.Float s.hit_rate);
      ("wall_seconds", Json.Float s.wall_seconds);
      ("throughput_rps", Json.Float s.throughput_rps);
      ("p50_ms", Json.Float s.p50_ms);
      ("p90_ms", Json.Float s.p90_ms);
      ("p99_ms", Json.Float s.p99_ms);
      ("max_ms", Json.Float s.max_ms) ]
