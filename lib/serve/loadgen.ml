(* Load generator for the serve bench, the CI smoke, and the chaos
   harness: N client domains hammer a running server with a seeded
   mixed request stream and we report latency percentiles, throughput,
   per-outcome counts, and the observed cache hit rate.

   In [chaos] mode each domain drives a resilient retrying client
   (timeouts, backoff, retry budget) and the stream is tilted to
   exercise the resilience machinery: a slice of requests carry tight
   deadlines, another slice bypasses the cache so work actually reaches
   the (possibly crashing) pool.  The pass criterion for a chaos run is
   [failed = 0]: every request either answered or structurally
   rejected, nothing hung, nothing died unexplained. *)

module Json = Bw_core.Json

type spec = {
  addr : Server.addr;
  clients : int;
  requests : int;
  seed : int;
  scale : int;
  chaos : bool;
  timeout_s : float;
  retries : int;
}

let default_spec addr =
  { addr;
    clients = 2;
    requests = 1000;
    seed = 42;
    scale = 1;
    chaos = false;
    timeout_s = 10.0;
    retries = 3 }

(* How one request ended, from the client's point of view. *)
type outcome =
  | Answered  (* ok, full fidelity *)
  | Degraded  (* ok, analytic tier under load shed *)
  | Rejected of string  (* structured rejection with a known code *)
  | Error_reply  (* other error-status response *)
  | No_answer  (* transport failure (after retries, in chaos mode) *)

let rejection_codes =
  [ "overloaded"; "deadline_exceeded"; "shutting_down"; "request_too_large" ]

type bucket = {
  count : int;
  b_p50_ms : float;
  b_p90_ms : float;
  b_p99_ms : float;
  b_max_ms : float;
}

type stats = {
  requests : int;
  clients : int;
  errors : int;
  cached : int;
  hit_rate : float;
  wall_seconds : float;
  throughput_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  ok : int;
  degraded : int;
  rejected : int;
  shed : int;
  failed : int;
  retried : int;
  by_outcome : (string * bucket) list;
}

(* One sample per completed request. *)
type sample = {
  latency_ms : float;
  was_cached : bool;
  outcome : outcome;
  retried : int;  (* retries this request consumed *)
}

(* The mixed stream draws from a deliberately bounded universe of
   request shapes so that a warmed-up run exercises the result cache:
   a handful of registry programs × machine subsets × ops. *)
let programs = [| "read_loop"; "write_loop"; "convolution"; "fig7" |]

let machine_sets =
  [| [ "origin2000" ];
     [ "exemplar" ];
     [ "origin2000"; "exemplar" ];
     [ "unconstrained" ] |]

let pick rng a = a.(Random.State.int rng (Array.length a))

let random_request rng ~scale ~chaos =
  let program = Some (pick rng programs) in
  let machines = pick rng machine_sets in
  (* weighted op mix: mostly analyze/predict/simulate, some optimize,
     a sprinkle of fuzz and ping *)
  let base =
    match Random.State.int rng 100 with
    | n when n < 30 ->
      { (Protocol.default_request Protocol.Analyze) with program; machines; scale }
    | n when n < 60 ->
      let budget =
        pick rng [| `Analytic; `Reuse; `Exact |]
      in
      { (Protocol.default_request Protocol.Predict) with
        program; machines; scale; budget }
    | n when n < 85 ->
      { (Protocol.default_request Protocol.Simulate) with program; machines; scale }
    | n when n < 93 ->
      { (Protocol.default_request Protocol.Optimize) with
        program; machines = [ List.hd machines ]; scale }
    | n when n < 97 ->
      { (Protocol.default_request Protocol.Fuzz) with
        seed = Random.State.int rng 4; count = 2; size = 3 }
    | _ -> Protocol.default_request Protocol.Ping
  in
  if not chaos then base
  else
    (* tilt the stream at the resilience machinery: tight deadlines
       that expire under injected delays, and cache bypasses so work
       reaches the pool (a warmed cache would otherwise absorb
       everything and leave the crash site uncrossed) *)
    let base =
      match Random.State.int rng 10 with
      | 0 -> { base with Protocol.deadline_ms = Some 25 }
      | _ -> base
    in
    match Random.State.int rng 5 with
    | 0 -> { base with Protocol.no_cache = true }
    | _ -> base

let classify reply =
  match reply with
  | Error _ -> (false, No_answer)
  | Ok j -> (
    let cached = Protocol.response_cached j in
    match Protocol.response_result j with
    | Ok _ -> (cached, if Protocol.response_degraded j then Degraded else Answered)
    | Error _ -> (
      match Protocol.response_error_code j with
      | Some c when List.mem c rejection_codes -> (cached, Rejected c)
      | _ -> (cached, Error_reply)))

let client_run (spec : spec) ~client_id ~count =
  let rng = Random.State.make [| spec.seed; client_id |] in
  let samples =
    Array.make count
      { latency_ms = 0.; was_cached = false; outcome = No_answer; retried = 0 }
  in
  let sample_one ~send i =
    let req = random_request rng ~scale:spec.scale ~chaos:spec.chaos in
    let t0 = Unix.gettimeofday () in
    let reply, retried = send req in
    let latency_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
    let was_cached, outcome = classify reply in
    samples.(i) <- { latency_ms; was_cached; outcome; retried }
  in
  if spec.chaos then begin
    let cfg =
      { Client.default_retry_config with
        Client.timeout_s = spec.timeout_s;
        max_retries = spec.retries }
    in
    let rc = Client.resilient ~cfg ~seed:(spec.seed lxor (client_id * 7919)) spec.addr in
    Fun.protect
      ~finally:(fun () -> Client.resilient_close rc)
      (fun () ->
        for i = 0 to count - 1 do
          sample_one i ~send:(fun req ->
              let before = Client.retry_count rc in
              let reply = Client.resilient_request rc req in
              (reply, Client.retry_count rc - before))
        done;
        samples)
  end
  else begin
    let client = Client.connect spec.addr in
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () ->
        for i = 0 to count - 1 do
          sample_one i ~send:(fun req -> (Client.request client req, 0))
        done;
        samples)
  end

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let idx = int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let bucket_of samples =
  let latencies = Array.map (fun s -> s.latency_ms) samples in
  Array.sort compare latencies;
  let n = Array.length latencies in
  { count = n;
    b_p50_ms = percentile latencies 50.;
    b_p90_ms = percentile latencies 90.;
    b_p99_ms = percentile latencies 99.;
    b_max_ms = (if n = 0 then 0. else latencies.(n - 1)) }

let outcome_name = function
  | Answered -> "ok"
  | Degraded -> "degraded"
  | Rejected _ -> "rejected"
  | Error_reply -> "error"
  | No_answer -> "failed"

let run (spec : spec) =
  if spec.clients < 1 then invalid_arg "Loadgen.run: clients < 1";
  if spec.requests < 1 then invalid_arg "Loadgen.run: requests < 1";
  let per_client = spec.requests / spec.clients in
  let counts =
    (* distribute the remainder over the first few clients *)
    Array.init spec.clients (fun i ->
        per_client + if i < spec.requests mod spec.clients then 1 else 0)
  in
  let t0 = Unix.gettimeofday () in
  let domains =
    Array.mapi
      (fun i count ->
        Domain.spawn (fun () -> client_run spec ~client_id:i ~count))
      counts
  in
  let samples = Array.concat (Array.to_list (Array.map Domain.join domains)) in
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let latencies =
    Array.map (fun s -> s.latency_ms) (Array.copy samples)
  in
  Array.sort compare latencies;
  let count pred =
    Array.fold_left (fun acc s -> if pred s then acc + 1 else acc) 0 samples
  in
  let ok = count (fun s -> s.outcome = Answered) in
  let degraded = count (fun s -> s.outcome = Degraded) in
  let rejected =
    count (fun s -> match s.outcome with Rejected _ -> true | _ -> false)
  in
  let shed = count (fun s -> s.outcome = Rejected "overloaded") in
  let failed = count (fun s -> s.outcome = No_answer) in
  let errors = Array.length samples - ok - degraded in
  let retried = Array.fold_left (fun acc s -> acc + s.retried) 0 samples in
  let cached = count (fun s -> s.was_cached) in
  let by_outcome =
    List.map
      (fun name ->
        ( name,
          bucket_of
            (Array.of_list
               (List.filter
                  (fun s -> outcome_name s.outcome = name)
                  (Array.to_list samples))) ))
      [ "ok"; "degraded"; "rejected"; "error"; "failed" ]
  in
  let n = Array.length samples in
  { requests = n;
    clients = spec.clients;
    errors;
    cached;
    hit_rate = (if n = 0 then 0. else float_of_int cached /. float_of_int n);
    wall_seconds;
    throughput_rps =
      (if wall_seconds > 0. then float_of_int n /. wall_seconds else 0.);
    p50_ms = percentile latencies 50.;
    p90_ms = percentile latencies 90.;
    p99_ms = percentile latencies 99.;
    max_ms = (if n = 0 then 0. else latencies.(n - 1));
    ok;
    degraded;
    rejected;
    shed;
    failed;
    retried;
    by_outcome }

let json_of_bucket b =
  Json.Obj
    [ ("count", Json.Int b.count);
      ("p50_ms", Json.Float b.b_p50_ms);
      ("p90_ms", Json.Float b.b_p90_ms);
      ("p99_ms", Json.Float b.b_p99_ms);
      ("max_ms", Json.Float b.b_max_ms) ]

let json_of_stats s =
  Json.Obj
    [ ("requests", Json.Int s.requests);
      ("clients", Json.Int s.clients);
      ("errors", Json.Int s.errors);
      ("cached", Json.Int s.cached);
      ("hit_rate", Json.Float s.hit_rate);
      ("wall_seconds", Json.Float s.wall_seconds);
      ("throughput_rps", Json.Float s.throughput_rps);
      ("p50_ms", Json.Float s.p50_ms);
      ("p90_ms", Json.Float s.p90_ms);
      ("p99_ms", Json.Float s.p99_ms);
      ("max_ms", Json.Float s.max_ms);
      ("ok", Json.Int s.ok);
      ("degraded", Json.Int s.degraded);
      ("rejected", Json.Int s.rejected);
      ("shed", Json.Int s.shed);
      ("failed", Json.Int s.failed);
      ("retried", Json.Int s.retried);
      ( "outcomes",
        Json.Obj (List.map (fun (name, b) -> (name, json_of_bucket b)) s.by_outcome)
      ) ]
