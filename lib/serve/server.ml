(* The bwc serve daemon: accept loop, per-connection threads, compute
   on the persistent domain pool, content-addressed result cache,
   capture-sharing simulate batcher, graceful drain.  See server.mli. *)

module Json = Bw_core.Json

type addr = Unix_sock of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_sock path -> Format.fprintf ppf "unix:%s" path
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port

type config = {
  addr : addr;
  jobs : int option;
  cache_capacity : int;
  capture_capacity : int;
  verbose : bool;
}

let default_config addr =
  { addr; jobs = None; cache_capacity = 512; capture_capacity = 32;
    verbose = false }

type conn = { fd : Unix.file_descr; mutable busy : bool; conn_id : int }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  actual_addr : addr;
  pool : Bw_exec.Pool.t;
  results : Json.t Cache.t;
  captures : Bw_exec.Run.capture Cache.t;
  batcher : Batch.t;
  drain_requested : bool Atomic.t;
  stopping : bool Atomic.t;
  cm : Mutex.t;
  cc : Condition.t;
  conns : (int, conn) Hashtbl.t;
  mutable next_conn : int;
  mutable accept_thread : Thread.t option;
  started_at : float;
}

(* --- metrics ---------------------------------------------------------------- *)

let requests_c = Bw_obs.Metrics.counter "serve.requests"
let errors_c = Bw_obs.Metrics.counter "serve.errors"
let connections_c = Bw_obs.Metrics.counter "serve.connections"
let latency_h = Bw_obs.Metrics.histogram "serve.latency_ms"
let inflight_g = Bw_obs.Metrics.gauge "serve.inflight"
let cache_size_g = Bw_obs.Metrics.gauge "serve.cache.size"

(* --- request processing ----------------------------------------------------- *)

let uptime t = Unix.gettimeofday () -. t.started_at

let ping_payload t =
  let stats = Cache.stats t.results in
  Json.Obj
    [ ("pong", Json.Bool true);
      ("version", Json.Int Protocol.version);
      ("pid", Json.Int (Unix.getpid ()));
      ("uptime_seconds", Json.Float (uptime t));
      ("pool_jobs", Json.Int (Bw_exec.Pool.jobs t.pool));
      ( "cache",
        Json.Obj
          [ ("size", Json.Int stats.Cache.size);
            ("capacity", Json.Int stats.Cache.capacity);
            ("hits", Json.Int stats.Cache.hits);
            ("misses", Json.Int stats.Cache.misses);
            ("evictions", Json.Int stats.Cache.evictions);
            ("single_flight_joins", Json.Int stats.Cache.single_flight_joins)
          ] ) ]

(* Capture the program once per (digest, engine), shared across
   requests through the capture cache and the batcher. *)
let replay_fn t req program machines =
  let ckey = Protocol.capture_key req ~program in
  Batch.simulate t.batcher ~key:ckey
    ~capture:(fun () ->
      fst
        (Cache.find_or_compute t.captures ~key:ckey (fun () ->
             Bw_exec.Run.capture ~engine:req.Protocol.engine program)))
    machines

(* One-line error message from an arbitrary handler exception. *)
let one_line e =
  let s = Printexc.to_string e in
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

let compute_op t (req : Protocol.request) =
  match
    if Protocol.needs_program req then
      Result.map Option.some (Protocol.load_program req)
    else Ok None
  with
  | Error msg -> Protocol.error_response ?id:req.Protocol.id msg
  | Ok program -> (
    match Protocol.resolve_machines req with
    | Error msg -> Protocol.error_response ?id:req.Protocol.id msg
    | Ok machines -> (
      let work () =
        Bw_exec.Pool.run t.pool (fun () ->
            let replay =
              match program with
              | Some p when req.Protocol.op = Protocol.Simulate ->
                Some (replay_fn t req p)
              | _ -> None
            in
            Handle.compute ?replay req ~machines program)
      in
      match
        match Protocol.cache_key req ~program with
        | Some key when not req.Protocol.no_cache ->
          let payload, how = Cache.find_or_compute t.results ~key work in
          (payload, how <> `Miss)
        | _ -> (work (), false)
      with
      | payload, cached ->
        Bw_obs.Metrics.set cache_size_g
          (float_of_int (Cache.stats t.results).Cache.size);
        Protocol.ok_response ?id:req.Protocol.id ~op:req.Protocol.op ~cached
          payload
      | exception e ->
        Protocol.error_response ?id:req.Protocol.id (one_line e)))

let initiate_shutdown t =
  if Atomic.compare_and_set t.stopping false true then begin
    if t.config.verbose then Format.eprintf "bwc serve: draining...@.";
    (* Idle connections are parked in input_line; shut their read side
       down so they see EOF.  Busy ones finish their current request
       and notice the flag afterwards. *)
    Mutex.lock t.cm;
    Hashtbl.iter
      (fun _ c ->
        if not c.busy then
          try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      t.conns;
    Mutex.unlock t.cm
  end

let request_shutdown t = Atomic.set t.drain_requested true

(* Process one request line; returns the response string (without
   newline) and whether to keep the connection. *)
let respond_to_line t line =
  let json_reply j = (Json.to_string j, `Keep) in
  if String.length line >= 4 && String.sub line 0 4 = "GET " then
    (* /metrics-style scrape: minimal HTTP, then close. *)
    let body = Expose.render () in
    ( Printf.sprintf
        "HTTP/1.0 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4\r\n\
         Content-Length: %d\r\n\r\n%s"
        (String.length body) body,
      `Close )
  else
    match Protocol.request_of_string line with
    | Error msg ->
      Bw_obs.Metrics.incr errors_c;
      json_reply (Protocol.error_response msg)
    | Ok req -> (
      let id = req.Protocol.id in
      let op = req.Protocol.op in
      match op with
      | Protocol.Ping ->
        json_reply (Protocol.ok_response ?id ~op ~cached:false (ping_payload t))
      | Protocol.Metrics ->
        json_reply
          (Protocol.ok_response ?id ~op ~cached:false
             (Json.Obj [ ("text", Json.String (Expose.render ())) ]))
      | Protocol.Shutdown ->
        request_shutdown t;
        json_reply
          (Protocol.ok_response ?id ~op ~cached:false
             (Json.Obj [ ("draining", Json.Bool true) ]))
      | _ -> (
        match compute_op t req with
        | response ->
          (match Json.member "status" response with
          | Some (Json.String "error") -> Bw_obs.Metrics.incr errors_c
          | _ -> ());
          json_reply response
        | exception e ->
          (* belt and braces: compute_op already confines handler
             exceptions; this catches protocol-layer surprises *)
          Bw_obs.Metrics.incr errors_c;
          json_reply (Protocol.error_response ?id (one_line e))))

(* --- connection lifecycle ---------------------------------------------------- *)

let unregister t conn =
  Mutex.lock t.cm;
  Hashtbl.remove t.conns conn.conn_id;
  Condition.broadcast t.cc;
  Mutex.unlock t.cm;
  (try Unix.close conn.fd with _ -> ())

let conn_loop t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let oc = Unix.out_channel_of_descr conn.fd in
  let rec go () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" ->
      if not (Atomic.get t.stopping) then go ()
    | line -> (
      conn.busy <- true;
      Bw_obs.Metrics.incr requests_c;
      Bw_obs.Metrics.set inflight_g 1.0;
      let t0 = Unix.gettimeofday () in
      let reply, action = respond_to_line t line in
      let wrote =
        match
          output_string oc reply;
          output_char oc '\n';
          flush oc
        with
        | () -> true
        | exception Sys_error _ -> false
      in
      Bw_obs.Metrics.observe latency_h
        (1e3 *. (Unix.gettimeofday () -. t0));
      conn.busy <- false;
      match action with
      | `Close -> ()
      | `Keep -> if wrote && not (Atomic.get t.stopping) then go ())
  in
  (try go () with _ -> ());
  unregister t conn

let register_conn t fd =
  Mutex.lock t.cm;
  let conn = { fd; busy = false; conn_id = t.next_conn } in
  t.next_conn <- t.next_conn + 1;
  Hashtbl.add t.conns conn.conn_id conn;
  Mutex.unlock t.cm;
  Bw_obs.Metrics.incr connections_c;
  ignore (Thread.create (fun () -> conn_loop t conn) ())

let accept_loop t =
  let rec go () =
    if Atomic.get t.drain_requested then initiate_shutdown t;
    if Atomic.get t.stopping then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [ _ ], _, _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ -> register_conn t fd
        | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ();
  (try Unix.close t.listen_fd with _ -> ())

(* --- lifecycle --------------------------------------------------------------- *)

let bind_listen addr =
  match addr with
  | Unix_sock path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 128;
    (fd, addr)
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> failwith (Printf.sprintf "unknown host '%s'" host))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 128;
    let actual_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (fd, Tcp (host, actual_port))

let start config =
  let listen_fd, actual_addr = bind_listen config.addr in
  let t =
    { config;
      listen_fd;
      actual_addr;
      pool = Bw_exec.Pool.create ?jobs:config.jobs ();
      results = Cache.create ~capacity:config.cache_capacity ();
      captures =
        Cache.create ~metric_prefix:"serve.capture_cache."
          ~capacity:config.capture_capacity ();
      batcher = Batch.create ();
      drain_requested = Atomic.make false;
      stopping = Atomic.make false;
      cm = Mutex.create ();
      cc = Condition.create ();
      conns = Hashtbl.create 32;
      next_conn = 0;
      accept_thread = None;
      started_at = Unix.gettimeofday () }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let addr t = t.actual_addr

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (* drain: every connection thread unregisters itself when done *)
  Mutex.lock t.cm;
  while Hashtbl.length t.conns > 0 do
    Condition.wait t.cc t.cm
  done;
  Mutex.unlock t.cm;
  Bw_exec.Pool.shutdown t.pool;
  match t.actual_addr with
  | Unix_sock path -> ( try Unix.unlink path with _ -> ())
  | Tcp _ -> ()

let stop t =
  request_shutdown t;
  wait t

(* SIGTERM/SIGINT only set a flag; the accept loop notices within its
   select timeout and performs the actual drain outside any lock — a
   handler that took mutexes could deadlock against the thread it
   interrupted. *)
let install_signal_handlers t =
  let handler = Sys.Signal_handle (fun _ -> request_shutdown t) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler
