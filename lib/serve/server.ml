(* The bwc serve daemon: accept loop, per-connection threads, compute
   on the persistent domain pool, content-addressed result cache,
   capture-sharing simulate batcher, graceful drain.  See server.mli. *)

module Json = Bw_core.Json

type addr = Unix_sock of string | Tcp of string * int

let pp_addr ppf = function
  | Unix_sock path -> Format.fprintf ppf "unix:%s" path
  | Tcp (host, port) -> Format.fprintf ppf "tcp:%s:%d" host port

type config = {
  addr : addr;
  jobs : int option;
  cache_capacity : int;
  capture_capacity : int;
  verbose : bool;
  max_queue : int;
  degrade_queue : int;
  default_deadline_ms : int;
  max_deadline_ms : int;
  idle_timeout_s : float;
  max_request_bytes : int;
}

let default_config addr =
  { addr; jobs = None; cache_capacity = 512; capture_capacity = 32;
    verbose = false;
    max_queue = 64;
    degrade_queue = 16;
    default_deadline_ms = 30_000;
    max_deadline_ms = 300_000;
    idle_timeout_s = 60.0;
    max_request_bytes = 4 * 1024 * 1024 }

type conn = {
  fd : Unix.file_descr;
  mutable busy : bool;
  mutable last_active : float;
  conn_id : int;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  actual_addr : addr;
  pool : Bw_exec.Pool.t;
  results : Json.t Cache.t;
  captures : Bw_exec.Run.capture Cache.t;
  batcher : Batch.t;
  drain_requested : bool Atomic.t;
  stopping : bool Atomic.t;
  cm : Mutex.t;
  cc : Condition.t;
  conns : (int, conn) Hashtbl.t;
  compute_inflight : int Atomic.t;
  inflight : int Atomic.t;
  mutable next_conn : int;
  mutable accept_thread : Thread.t option;
  mutable watchdog_thread : Thread.t option;
  started_at : float;
}

(* --- metrics ---------------------------------------------------------------- *)

let requests_c = Bw_obs.Metrics.counter "serve.requests"
let errors_c = Bw_obs.Metrics.counter "serve.errors"
let connections_c = Bw_obs.Metrics.counter "serve.connections"
let latency_h = Bw_obs.Metrics.histogram "serve.latency_ms"
let inflight_g = Bw_obs.Metrics.gauge "serve.inflight"
let cache_size_g = Bw_obs.Metrics.gauge "serve.cache.size"
let queue_depth_g = Bw_obs.Metrics.gauge "serve.queue.depth"
let shed_c = Bw_obs.Metrics.counter "serve.queue.shed"
let degraded_c = Bw_obs.Metrics.counter "serve.queue.degraded"
let deadline_expired_c = Bw_obs.Metrics.counter "serve.deadline.expired"
let watchdog_closed_c = Bw_obs.Metrics.counter "serve.watchdog.closed"
let oversized_c = Bw_obs.Metrics.counter "serve.request.oversized"

(* --- chaos sites ------------------------------------------------------------- *)

let compute_delay_site = "serve.compute.delay"
let socket_stall_site = "serve.socket.stall"
let socket_close_site = "serve.socket.close"
let capture_site = "serve.capture"

let () =
  Bw_obs.Fault.declare
    ~doc:"Straggler compute: sleep inside the pool task (delay action)"
    compute_delay_site;
  Bw_obs.Fault.declare
    ~doc:"Stall mid-response: write half the reply, sleep, write the rest"
    socket_stall_site;
  Bw_obs.Fault.declare
    ~doc:"Drop the connection after writing half a reply" socket_close_site;
  Bw_obs.Fault.declare ~doc:"Fail obtaining a capture for a simulate group"
    capture_site

(* --- request processing ----------------------------------------------------- *)

let uptime t = Unix.gettimeofday () -. t.started_at

let ping_payload t =
  let stats = Cache.stats t.results in
  Json.Obj
    [ ("pong", Json.Bool true);
      ("version", Json.Int Protocol.version);
      ("pid", Json.Int (Unix.getpid ()));
      ("uptime_seconds", Json.Float (uptime t));
      ("pool_jobs", Json.Int (Bw_exec.Pool.jobs t.pool));
      ("queue_depth", Json.Int (max 0 (Atomic.get t.compute_inflight - Bw_exec.Pool.jobs t.pool)));
      ( "cache",
        Json.Obj
          [ ("size", Json.Int stats.Cache.size);
            ("capacity", Json.Int stats.Cache.capacity);
            ("hits", Json.Int stats.Cache.hits);
            ("misses", Json.Int stats.Cache.misses);
            ("evictions", Json.Int stats.Cache.evictions);
            ("single_flight_joins", Json.Int stats.Cache.single_flight_joins)
          ] ) ]

(* Capture the program once per (digest, engine), shared across
   requests through the capture cache and the batcher.  The deadline is
   re-checked before (re)obtaining a capture so an expired request does
   not lead a batch it cannot wait for. *)
let replay_fn t req ~deadline program machines =
  let ckey = Protocol.capture_key req ~program in
  Batch.simulate t.batcher ~key:ckey
    ~capture:(fun () ->
      Handle.check_deadline deadline;
      Bw_obs.Fault.cut capture_site;
      fst
        (Cache.find_or_compute t.captures ~key:ckey (fun () ->
             Bw_exec.Run.capture ~engine:req.Protocol.engine program)))
    machines

(* One-line error message from an arbitrary handler exception. *)
let one_line e =
  let s = Printexc.to_string e in
  match String.index_opt s '\n' with
  | Some i -> String.sub s 0 i
  | None -> s

(* Pool tasks queued beyond what the worker domains can be running
   right now — the backlog a new request would join. *)
let pending_depth t =
  max 0 (Atomic.get t.compute_inflight - Bw_exec.Pool.jobs t.pool)

(* Absolute deadline instant for a request: its own budget clamped to
   the server cap, or the server default (0 disables). *)
let effective_deadline t (req : Protocol.request) =
  let ms =
    match req.Protocol.deadline_ms with
    | Some ms -> min ms t.config.max_deadline_ms
    | None -> t.config.default_deadline_ms
  in
  if ms <= 0 then None
  else Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.))

(* Crude queueing estimate for the overload hint: excess backlog times
   a nominal per-request cost, clamped to something a client can
   reasonably sleep. *)
let retry_after_ms t ~depth =
  min 5000 (max 50 (50 * (depth - t.config.max_queue + 1)))

let structured_error t (req : Protocol.request) e =
  match e with
  | Handle.Deadline_exceeded ->
    Bw_obs.Metrics.incr deadline_expired_c;
    Protocol.error_response ?id:req.Protocol.id ~code:"deadline_exceeded"
      "deadline exceeded before the result was ready"
  | Bw_exec.Pool.Worker_crashed msg ->
    if t.config.verbose then
      Format.eprintf "bwc serve: worker crash surfaced to a request: %s@." msg;
    Protocol.error_response ?id:req.Protocol.id ~code:"worker_crashed" msg
  | e -> Protocol.error_response ?id:req.Protocol.id (one_line e)

let compute_op t (req : Protocol.request) ~degrade =
  match
    if Protocol.needs_program req then
      Result.map Option.some (Protocol.load_program req)
    else Ok None
  with
  | Error msg ->
    Protocol.error_response ?id:req.Protocol.id ~code:"bad_request" msg
  | Ok program -> (
    match Protocol.resolve_machines req with
    | Error msg ->
      Protocol.error_response ?id:req.Protocol.id ~code:"bad_request" msg
    | Ok machines -> (
      let deadline = effective_deadline t req in
      match (degrade, program) with
      | true, Some p -> (
        (* Load shed, fidelity first: answer inline from the analytic
           tier — no pool, no queue, and deliberately no cache in
           either direction, so degraded payloads can never alias the
           byte-identical full-fidelity cached answers. *)
        Bw_obs.Metrics.incr degraded_c;
        match Handle.degraded req ~machines p with
        | payload ->
          Protocol.ok_response ?id:req.Protocol.id ~degraded:"analytic"
            ~op:req.Protocol.op ~cached:false payload
        | exception e -> structured_error t req e)
      | _ -> (
        Atomic.incr t.compute_inflight;
        Fun.protect
          ~finally:(fun () -> Atomic.decr t.compute_inflight)
        @@ fun () ->
        let work () =
          Bw_exec.Pool.run t.pool (fun () ->
              (* dequeue-time enforcement: a request whose deadline
                 passed while queued is never computed *)
              Handle.check_deadline deadline;
              (match Bw_obs.Fault.check compute_delay_site with
              | Some (Bw_obs.Fault.Delay ms) -> Bw_obs.Fault.sleep_ms ms
              | Some (Bw_obs.Fault.Raise | Bw_obs.Fault.Corrupt) ->
                Bw_obs.Fault.sleep_ms 250
              | None -> ());
              let replay =
                match program with
                | Some p when req.Protocol.op = Protocol.Simulate ->
                  Some (replay_fn t req ~deadline p)
                | _ -> None
              in
              Handle.compute ?deadline ?replay req ~machines program)
        in
        match
          match Protocol.cache_key req ~program with
          | Some key when not req.Protocol.no_cache ->
            let payload, how = Cache.find_or_compute t.results ~key work in
            (payload, how <> `Miss)
          | _ -> (work (), false)
        with
        | payload, cached ->
          Bw_obs.Metrics.set cache_size_g
            (float_of_int (Cache.stats t.results).Cache.size);
          Protocol.ok_response ?id:req.Protocol.id ~op:req.Protocol.op ~cached
            payload
        | exception e -> structured_error t req e)))

let initiate_shutdown t =
  if Atomic.compare_and_set t.stopping false true then begin
    if t.config.verbose then Format.eprintf "bwc serve: draining...@.";
    (* Idle connections are parked in input_line; shut their read side
       down so they see EOF.  Busy ones finish their current request
       and notice the flag afterwards. *)
    Mutex.lock t.cm;
    Hashtbl.iter
      (fun _ c ->
        if not c.busy then
          try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      t.conns;
    Mutex.unlock t.cm
  end

let request_shutdown t = Atomic.set t.drain_requested true

(* Process one request line; returns the response string (without
   newline) and whether to keep the connection. *)
let respond_to_line t line =
  let json_reply j = (Json.to_string j, `Keep) in
  if String.length line >= 4 && String.sub line 0 4 = "GET " then
    (* /metrics-style scrape: minimal HTTP, then close. *)
    let body = Expose.render () in
    ( Printf.sprintf
        "HTTP/1.0 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4\r\n\
         Content-Length: %d\r\n\r\n%s"
        (String.length body) body,
      `Close )
  else
    match Protocol.request_of_string line with
    | Error msg ->
      Bw_obs.Metrics.incr errors_c;
      json_reply (Protocol.error_response msg)
    | Ok req -> (
      let id = req.Protocol.id in
      let op = req.Protocol.op in
      match op with
      | Protocol.Ping ->
        json_reply (Protocol.ok_response ?id ~op ~cached:false (ping_payload t))
      | Protocol.Metrics ->
        json_reply
          (Protocol.ok_response ?id ~op ~cached:false
             (Json.Obj [ ("text", Json.String (Expose.render ())) ]))
      | Protocol.Shutdown ->
        request_shutdown t;
        json_reply
          (Protocol.ok_response ?id ~op ~cached:false
             (Json.Obj [ ("draining", Json.Bool true) ]))
      | _ ->
        (* Admission control for compute ops, in strictness order:
           draining servers reject; a backlog past [max_queue] sheds
           with a retry hint; past [degrade_queue], degradable ops are
           answered inline from the analytic tier instead of queueing;
           otherwise normal admission. *)
        if Atomic.get t.stopping then begin
          Bw_obs.Metrics.incr errors_c;
          json_reply
            (Protocol.error_response ?id ~code:"shutting_down"
               "server is draining; request not admitted")
        end
        else begin
          let depth = pending_depth t in
          Bw_obs.Metrics.set queue_depth_g (float_of_int depth);
          if depth >= t.config.max_queue then begin
            Bw_obs.Metrics.incr shed_c;
            Bw_obs.Metrics.incr errors_c;
            json_reply
              (Protocol.error_response ?id ~code:"overloaded"
                 ~retry_after_ms:(retry_after_ms t ~depth)
                 (Printf.sprintf "backlog %d at capacity %d" depth
                    t.config.max_queue))
          end
          else
            let degrade =
              depth >= t.config.degrade_queue && Protocol.degradable op
            in
            match compute_op t req ~degrade with
            | response ->
              (match Json.member "status" response with
              | Some (Json.String "error") -> Bw_obs.Metrics.incr errors_c
              | _ -> ());
              json_reply response
            | exception e ->
              (* belt and braces: compute_op already confines handler
                 exceptions; this catches protocol-layer surprises *)
              Bw_obs.Metrics.incr errors_c;
              json_reply (Protocol.error_response ?id (one_line e))
        end)

(* --- connection lifecycle ---------------------------------------------------- *)

let unregister t conn =
  Mutex.lock t.cm;
  Hashtbl.remove t.conns conn.conn_id;
  Condition.broadcast t.cc;
  Mutex.unlock t.cm;
  (try Unix.close conn.fd with _ -> ())

(* Bounded replacement for [input_line]: a single request line longer
   than [max] bytes stops being buffered the moment it crosses the
   limit, so one connection cannot balloon server memory.  A partial
   line at EOF is returned like [input_line] would. *)
let read_request_line ic ~max =
  let buf = Buffer.create 256 in
  let rec go () =
    match input_char ic with
    | exception (End_of_file | Sys_error _) ->
      if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
    | '\n' -> `Line (Buffer.contents buf)
    | c ->
      if Buffer.length buf >= max then `Too_long
      else begin
        Buffer.add_char buf c;
        go ()
      end
  in
  go ()

(* Write one reply, crossing the socket chaos sites: [socket.close]
   drops the connection after half the bytes; [socket.stall] sleeps
   mid-reply (the stall a client read timeout must survive).  Returns
   whether the full reply was written.  The HTTP metrics scrape is
   exempt — chaos must not blind the observability channel watching
   it. *)
let write_reply conn oc ~chaos_exempt reply =
  let finish () =
    output_char oc '\n';
    flush oc;
    true
  in
  match
    if chaos_exempt then begin
      output_string oc reply;
      finish ()
    end
    else
      match Bw_obs.Fault.check socket_close_site with
      | Some _ ->
        let half = String.length reply / 2 in
        output_string oc (String.sub reply 0 half);
        flush oc;
        (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        false
      | None -> (
        match Bw_obs.Fault.check socket_stall_site with
        | Some a ->
          let ms = match a with Bw_obs.Fault.Delay ms -> ms | _ -> 250 in
          let half = String.length reply / 2 in
          output_string oc (String.sub reply 0 half);
          flush oc;
          Thread.delay (float_of_int ms /. 1000.);
          output_string oc
            (String.sub reply half (String.length reply - half));
          finish ()
        | None ->
          output_string oc reply;
          finish ())
  with
  | wrote -> wrote
  | exception Sys_error _ -> false

let conn_loop t conn =
  let ic = Unix.in_channel_of_descr conn.fd in
  let oc = Unix.out_channel_of_descr conn.fd in
  let rec go () =
    match read_request_line ic ~max:t.config.max_request_bytes with
    | `Eof -> ()
    | `Too_long ->
      (* the rest of the oversized line was never read: answer
         structurally and drop the (unsynchronisable) connection *)
      Bw_obs.Metrics.incr oversized_c;
      Bw_obs.Metrics.incr errors_c;
      ignore
        (write_reply conn oc ~chaos_exempt:false
           (Json.to_string
              (Protocol.error_response ~code:"request_too_large"
                 (Printf.sprintf "request line exceeds %d bytes"
                    t.config.max_request_bytes))))
    | `Line line when String.trim line = "" ->
      conn.last_active <- Unix.gettimeofday ();
      if not (Atomic.get t.stopping) then go ()
    | `Line line -> (
      conn.busy <- true;
      conn.last_active <- Unix.gettimeofday ();
      Bw_obs.Metrics.incr requests_c;
      Bw_obs.Metrics.set inflight_g
        (float_of_int (Atomic.fetch_and_add t.inflight 1 + 1));
      let t0 = Unix.gettimeofday () in
      let reply, action = respond_to_line t line in
      let wrote =
        write_reply conn oc ~chaos_exempt:(action = `Close) reply
      in
      Bw_obs.Metrics.observe latency_h
        (1e3 *. (Unix.gettimeofday () -. t0));
      Bw_obs.Metrics.set inflight_g
        (float_of_int (Atomic.fetch_and_add t.inflight (-1) - 1));
      conn.busy <- false;
      conn.last_active <- Unix.gettimeofday ();
      match action with
      | `Close -> ()
      | `Keep -> if wrote && not (Atomic.get t.stopping) then go ())
  in
  (try go () with _ -> ());
  unregister t conn

let register_conn t fd =
  Mutex.lock t.cm;
  let conn =
    { fd; busy = false; last_active = Unix.gettimeofday ();
      conn_id = t.next_conn }
  in
  t.next_conn <- t.next_conn + 1;
  Hashtbl.add t.conns conn.conn_id conn;
  Mutex.unlock t.cm;
  Bw_obs.Metrics.incr connections_c;
  ignore (Thread.create (fun () -> conn_loop t conn) ())

(* Half-dead and slow-loris connections: a watchdog sweeps every 250 ms
   and shuts down connections with no traffic for [idle_timeout_s]
   while not executing a request.  The shutdown happens under [t.cm]
   while the conn is still registered, so it cannot race a concurrent
   [unregister]'s close and hit a recycled descriptor. *)
let watchdog_loop t =
  let rec go () =
    if not (Atomic.get t.stopping) then begin
      Thread.delay 0.25;
      let timeout = t.config.idle_timeout_s in
      if timeout > 0.0 then begin
        let now = Unix.gettimeofday () in
        Mutex.lock t.cm;
        Hashtbl.iter
          (fun _ c ->
            if (not c.busy) && now -. c.last_active > timeout then begin
              Bw_obs.Metrics.incr watchdog_closed_c;
              if t.config.verbose then
                Format.eprintf
                  "bwc serve: watchdog closing idle connection #%d@."
                  c.conn_id;
              (* push its idle clock forward so an unregister still in
                 flight is not counted as a second close *)
              c.last_active <- now;
              (* wake the blocked reader with EOF; its thread closes
                 the descriptor on the way out *)
              try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error _ -> ()
            end)
          t.conns;
        Mutex.unlock t.cm
      end;
      go ()
    end
  in
  go ()

let accept_loop t =
  let rec go () =
    if Atomic.get t.drain_requested then initiate_shutdown t;
    if Atomic.get t.stopping then ()
    else begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [ _ ], _, _ -> (
        match Unix.accept t.listen_fd with
        | fd, _ -> register_conn t fd
        | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ();
  (try Unix.close t.listen_fd with _ -> ())

(* --- lifecycle --------------------------------------------------------------- *)

let bind_listen addr =
  match addr with
  | Unix_sock path ->
    if Sys.file_exists path then Unix.unlink path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 128;
    (fd, addr)
  | Tcp (host, port) ->
    let inet =
      try Unix.inet_addr_of_string host
      with _ -> (
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> failwith (Printf.sprintf "unknown host '%s'" host))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (inet, port));
    Unix.listen fd 128;
    let actual_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    (fd, Tcp (host, actual_port))

let start config =
  (* A peer dropping its socket mid-write (chaos faults, crashed
     clients) must surface as Sys_error/EPIPE, not kill the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let listen_fd, actual_addr = bind_listen config.addr in
  let t =
    { config;
      listen_fd;
      actual_addr;
      pool = Bw_exec.Pool.create ?jobs:config.jobs ();
      results = Cache.create ~capacity:config.cache_capacity ();
      captures =
        Cache.create ~metric_prefix:"serve.capture_cache."
          ~capacity:config.capture_capacity ();
      batcher = Batch.create ();
      drain_requested = Atomic.make false;
      stopping = Atomic.make false;
      cm = Mutex.create ();
      cc = Condition.create ();
      conns = Hashtbl.create 32;
      compute_inflight = Atomic.make 0;
      inflight = Atomic.make 0;
      next_conn = 0;
      accept_thread = None;
      watchdog_thread = None;
      started_at = Unix.gettimeofday () }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t.watchdog_thread <- Some (Thread.create (fun () -> watchdog_loop t) ());
  t

let addr t = t.actual_addr

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (match t.watchdog_thread with Some th -> Thread.join th | None -> ());
  (* drain: every connection thread unregisters itself when done *)
  Mutex.lock t.cm;
  while Hashtbl.length t.conns > 0 do
    Condition.wait t.cc t.cm
  done;
  Mutex.unlock t.cm;
  Bw_exec.Pool.shutdown t.pool;
  match t.actual_addr with
  | Unix_sock path -> ( try Unix.unlink path with _ -> ())
  | Tcp _ -> ()

let stop t =
  request_shutdown t;
  wait t

(* SIGTERM/SIGINT only set a flag; the accept loop notices within its
   select timeout and performs the actual drain outside any lock — a
   handler that took mutexes could deadlock against the thread it
   interrupted. *)
let install_signal_handlers t =
  let handler = Sys.Signal_handle (fun _ -> request_shutdown t) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler
