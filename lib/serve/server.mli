(** The [bwc serve] daemon.

    A long-running service answering newline-delimited JSON requests
    ({!Protocol}) over a Unix or TCP socket.  Per-connection system
    threads do the blocking I/O; handler compute runs on a persistent
    work-stealing domain pool ({!Bw_exec.Pool}).  Cacheable responses
    are memoised in a content-addressed result cache keyed on IR digest
    × machine set × pipeline config ({!Protocol.cache_key}); concurrent
    simulate requests sharing a capture are batched onto
    {!Bw_exec.Run.replay_many} ({!Batch}).

    Raw lines beginning with ["GET "] are answered with a minimal
    HTTP/1.0 response carrying the {!Expose.render} metrics text, so
    [curl http://host:port/metrics] works against a TCP listener.

    Shutdown is drain-then-exit: {!request_shutdown} (also wired to
    SIGTERM/SIGINT by {!install_signal_handlers}) stops the accept
    loop, wakes idle connections, lets busy ones finish their current
    request, then {!wait} joins everything and shuts the pool down. *)

type addr = Unix_sock of string | Tcp of string * int

val pp_addr : Format.formatter -> addr -> unit

type config = {
  addr : addr;
  jobs : int option;  (** worker domains; default [cores - 1] *)
  cache_capacity : int;  (** result-cache entries before LRU eviction *)
  capture_capacity : int;  (** capture-cache entries *)
  verbose : bool;
}

val default_config : addr -> config

type t

(** Bind, listen, spawn the accept loop, and return immediately.
    With [Tcp (host, 0)] the kernel picks a port; read it back from
    {!addr}.  A stale Unix socket file at the requested path is
    unlinked first. *)
val start : config -> t

(** The bound address — differs from the configured one only in the
    ephemeral-port case. *)
val addr : t -> addr

(** Ask the server to drain: stop accepting, wake idle connections,
    finish in-flight requests.  Returns immediately; safe to call from
    a signal handler (it only sets a flag — the accept loop performs
    the actual drain). *)
val request_shutdown : t -> unit

(** Block until the accept loop has exited and every connection has
    drained, then shut the worker pool down and remove the Unix socket
    file.  Call after {!request_shutdown} (or let a [shutdown] request
    / signal trigger the drain). *)
val wait : t -> unit

(** [request_shutdown] + [wait]. *)
val stop : t -> unit

(** Route SIGTERM and SIGINT to {!request_shutdown}. *)
val install_signal_handlers : t -> unit
