(** The [bwc serve] daemon.

    A long-running service answering newline-delimited JSON requests
    ({!Protocol}) over a Unix or TCP socket.  Per-connection system
    threads do the blocking I/O; handler compute runs on a persistent
    work-stealing domain pool ({!Bw_exec.Pool}).  Cacheable responses
    are memoised in a content-addressed result cache keyed on IR digest
    × machine set × pipeline config ({!Protocol.cache_key}); concurrent
    simulate requests sharing a capture are batched onto
    {!Bw_exec.Run.replay_many} ({!Batch}).

    Raw lines beginning with ["GET "] are answered with a minimal
    HTTP/1.0 response carrying the {!Expose.render} metrics text, so
    [curl http://host:port/metrics] works against a TCP listener.

    Shutdown is drain-then-exit: {!request_shutdown} (also wired to
    SIGTERM/SIGINT by {!install_signal_handlers}) stops the accept
    loop, wakes idle connections, lets busy ones finish their current
    request, then {!wait} joins everything and shuts the pool down.
    Requests arriving on a still-open connection after the drain began
    are rejected with [code:"shutting_down"].

    {2 Resilience}

    Every request gets an absolute {e deadline} at admission (its own
    [deadline_ms] clamped to [max_deadline_ms], else
    [default_deadline_ms]); it is enforced when the pool dequeues the
    task (an expired request is never computed) and at tier boundaries
    inside {!Handle}, producing [code:"deadline_exceeded"].  {e
    Admission control} watches the pool backlog: beyond
    [degrade_queue], degradable ops (analyze/predict) are answered
    inline from the analytic tier with [degraded:true] — fidelity is
    shed before availability — and beyond [max_queue] requests are
    rejected with [code:"overloaded"] plus a [retry_after_ms] hint.
    Worker-domain crashes are supervised by {!Bw_exec.Pool}: the
    affected request gets [code:"worker_crashed"] and the pool heals
    itself.  A {e watchdog} thread shuts down connections idle longer
    than [idle_timeout_s], and request lines longer than
    [max_request_bytes] are answered with [code:"request_too_large"]
    and the connection dropped rather than buffered without bound.

    Chaos sites armed via [BWC_FAULTS] drive all of this in tests/CI:
    [pool.worker.crash] (kill a worker domain at task pickup),
    [serve.compute.delay] (straggler compute), [serve.socket.stall]
    (half-written reply, sleep, rest), [serve.socket.close] (drop the
    connection mid-reply), [serve.capture] (fail a simulate group's
    capture).  The HTTP metrics scrape is exempt from socket chaos so
    observability survives the storm it is watching.

    Metrics: [serve.queue.depth] (gauge), [serve.queue.shed],
    [serve.queue.degraded], [serve.deadline.expired],
    [serve.watchdog.closed], [serve.request.oversized],
    [pool.worker.respawns]. *)

type addr = Unix_sock of string | Tcp of string * int

val pp_addr : Format.formatter -> addr -> unit

type config = {
  addr : addr;
  jobs : int option;  (** worker domains; default [cores - 1] *)
  cache_capacity : int;  (** result-cache entries before LRU eviction *)
  capture_capacity : int;  (** capture-cache entries *)
  verbose : bool;
  max_queue : int;
      (** reject ([overloaded]) when the pool backlog reaches this *)
  degrade_queue : int;
      (** degrade analyze/predict to the analytic tier from this
          backlog on (must be ≤ [max_queue] to ever fire) *)
  default_deadline_ms : int;
      (** deadline for requests that bring none; [0] disables *)
  max_deadline_ms : int;  (** cap on client-supplied [deadline_ms] *)
  idle_timeout_s : float;
      (** watchdog closes connections idle this long; [0.] disables *)
  max_request_bytes : int;  (** per-line request size bound *)
}

val default_config : addr -> config

type t

(** Bind, listen, spawn the accept loop, and return immediately.
    With [Tcp (host, 0)] the kernel picks a port; read it back from
    {!addr}.  A stale Unix socket file at the requested path is
    unlinked first. *)
val start : config -> t

(** The bound address — differs from the configured one only in the
    ephemeral-port case. *)
val addr : t -> addr

(** Ask the server to drain: stop accepting, wake idle connections,
    finish in-flight requests.  Returns immediately; safe to call from
    a signal handler (it only sets a flag — the accept loop performs
    the actual drain). *)
val request_shutdown : t -> unit

(** Block until the accept loop has exited and every connection has
    drained, then shut the worker pool down and remove the Unix socket
    file.  Call after {!request_shutdown} (or let a [shutdown] request
    / signal trigger the drain). *)
val wait : t -> unit

(** [request_shutdown] + [wait]. *)
val stop : t -> unit

(** Route SIGTERM and SIGINT to {!request_shutdown}. *)
val install_signal_handlers : t -> unit
