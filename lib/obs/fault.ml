type policy =
  | Nth of int
  | Every of int
  | Probability of float * int

type action = Raise | Corrupt | Delay of int

exception Injected of string

type armed_state = {
  action : action;
  policy : policy;
  mutable rng : int;  (** LCG state for [Probability] *)
}

type site = {
  doc : string;
  mutable hit_count : int;
  mutable fire_count : int;
  mutable armed : armed_state option;
}

(* One process-wide registry.  Sites are crossed from worker domains
   (the harness) as well as the main domain, so every access goes
   through [lock]; crossings are at stage/table granularity, never in a
   per-access loop, so a mutex is plenty. *)
let registry : (string, site) Hashtbl.t = Hashtbl.create 16
let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let find_or_add ?(doc = "") name =
  match Hashtbl.find_opt registry name with
  | Some s -> s
  | None ->
    let s = { doc; hit_count = 0; fire_count = 0; armed = None } in
    Hashtbl.add registry name s;
    s

let declare ?(doc = "") name = with_lock (fun () -> ignore (find_or_add ~doc name))

let sites () =
  with_lock (fun () ->
      Hashtbl.fold (fun name s acc -> (name, s.doc) :: acc) registry []
      |> List.sort compare)

let validate_policy = function
  | Nth n when n <= 0 ->
    invalid_arg (Printf.sprintf "Fault.arm: nth count must be positive (got %d)" n)
  | Every n when n <= 0 ->
    invalid_arg (Printf.sprintf "Fault.arm: every count must be positive (got %d)" n)
  | Probability (p, _) when not (p >= 0.0 && p <= 1.0) ->
    invalid_arg (Printf.sprintf "Fault.arm: probability %g outside [0,1]" p)
  | _ -> ()

let seed_mix seed = (seed * 2654435761) land 0x3FFFFFFF

let arm name action policy =
  validate_policy policy;
  with_lock (fun () ->
      let s = find_or_add name in
      let rng = match policy with Probability (_, seed) -> seed_mix seed | _ -> 0 in
      s.armed <- Some { action; policy; rng })

let disarm_all () =
  with_lock (fun () -> Hashtbl.iter (fun _ s -> s.armed <- None) registry)

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ s ->
          s.armed <- None;
          s.hit_count <- 0;
          s.fire_count <- 0)
        registry)

(* --- spec parsing ---------------------------------------------------- *)

let default_delay_ms = 250

let action_to_string = function
  | Raise -> "raise"
  | Corrupt -> "corrupt"
  | Delay ms -> Printf.sprintf "delay:%d" ms

let policy_to_string = function
  | Nth n -> Printf.sprintf "nth:%d" n
  | Every n -> Printf.sprintf "every:%d" n
  | Probability (p, seed) -> Printf.sprintf "prob:%g:%d" p seed

let armed () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun name s acc ->
          match s.armed with
          | None -> acc
          | Some a ->
            ( name,
              Printf.sprintf "%s@%s" (action_to_string a.action)
                (policy_to_string a.policy) )
            :: acc)
        registry []
      |> List.sort compare)

let parse_policy s =
  match String.split_on_char ':' s with
  | [ "nth"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Nth n)
    | _ -> Error (Printf.sprintf "bad nth count %S" n))
  | [ "every"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Every n)
    | _ -> Error (Printf.sprintf "bad every count %S" n))
  | [ "prob"; p; seed ] -> (
    match (float_of_string_opt p, int_of_string_opt seed) with
    | Some p, Some seed when p >= 0.0 && p <= 1.0 -> Ok (Probability (p, seed))
    | _ -> Error (Printf.sprintf "bad probability spec %S:%S" p seed))
  | _ ->
    Error
      (Printf.sprintf
         "bad policy %S (expected nth:N, every:N or prob:P:SEED)" s)

let parse_one item =
  match String.index_opt item '=' with
  | None -> Error (Printf.sprintf "missing '=' in fault spec %S" item)
  | Some i ->
    let site = String.sub item 0 i in
    let rest = String.sub item (i + 1) (String.length item - i - 1) in
    if site = "" then Error (Printf.sprintf "empty site name in %S" item)
    else
      let action_s, policy_s =
        match String.index_opt rest '@' with
        | None -> (rest, None)
        | Some j ->
          ( String.sub rest 0 j,
            Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
      in
      let action =
        match action_s with
        | "raise" -> Ok Raise
        | "corrupt" -> Ok Corrupt
        | "delay" -> Ok (Delay default_delay_ms)
        | a -> (
          match String.index_opt a ':' with
          | Some j when String.sub a 0 j = "delay" -> (
            let ms_s = String.sub a (j + 1) (String.length a - j - 1) in
            match int_of_string_opt ms_s with
            | Some ms when ms > 0 -> Ok (Delay ms)
            | _ -> Error (Printf.sprintf "bad delay duration %S" ms_s))
          | _ ->
            Error
              (Printf.sprintf
                 "bad action %S (expected raise, corrupt or delay[:MS])" a))
      in
      match action with
      | Error e -> Error e
      | Ok action -> (
        match policy_s with
        | None -> Ok (site, action, Nth 1)
        | Some p -> (
          match parse_policy p with
          | Ok policy -> Ok (site, action, policy)
          | Error e -> Error e))

let arm_spec spec =
  let items =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go = function
    | [] -> Ok ()
    | item :: rest -> (
      match parse_one item with
      | Error e -> Error e
      | Ok (site, action, policy) ->
        arm site action policy;
        go rest)
  in
  go items

let arm_from_env () =
  match Sys.getenv_opt "BWC_FAULTS" with
  | None | Some "" -> Ok ()
  | Some spec -> arm_spec spec

(* --- crossing -------------------------------------------------------- *)

(* Park–Miller-ish LCG over 31 bits: deterministic, dependency-free. *)
let lcg_next state = (state * 48271 + 1) land 0x3FFFFFFF
let lcg_float state = float_of_int state /. float_of_int 0x40000000

let check name =
  let fired =
    with_lock (fun () ->
        let s = find_or_add name in
        s.hit_count <- s.hit_count + 1;
        match s.armed with
        | None -> None
        | Some a ->
          let fire =
            match a.policy with
            | Nth n -> s.hit_count = n
            | Every n -> s.hit_count mod n = 0
            | Probability (p, _) ->
              a.rng <- lcg_next a.rng;
              lcg_float a.rng < p
          in
          if fire then begin
            s.fire_count <- s.fire_count + 1;
            Some a.action
          end
          else None)
  in
  (match fired with
  | Some _ -> Metrics.incr (Metrics.counter ("fault." ^ name ^ ".fires"))
  | None -> ());
  fired

let sleep_ms ms = if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.)

let cut name =
  match check name with
  | Some (Delay ms) -> sleep_ms ms
  | Some (Raise | Corrupt) -> raise (Injected name)
  | None -> ()

let hits name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some s -> s.hit_count
      | None -> 0)

let fires name =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some s -> s.fire_count
      | None -> 0)
