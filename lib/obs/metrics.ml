(* Named counters/gauges/histograms.  See metrics.mli. *)

let n_buckets = 64 (* bucket i holds observations in (2^(i-1), 2^i] *)

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  counts : int Atomic.t array; (* length n_buckets *)
  mutable sum : float; (* updated under [registry_lock]-free CAS? no: see note *)
  sum_lock : Mutex.t;
}

(* The histogram sum is a float, and OCaml has no atomic float add; the
   per-histogram mutex is fine because every histogram site here fires
   at most a few times per optimizer run. *)

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_hist of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let register name make classify =
  Mutex.lock registry_lock;
  let r =
    match Hashtbl.find_opt registry name with
    | Some i -> classify i
    | None ->
      let i = make () in
      Hashtbl.add registry name i;
      classify i
  in
  Mutex.unlock registry_lock;
  match r with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Metrics: %S already registered as another kind" name)

let counter name =
  register name
    (fun () -> I_counter (Atomic.make 0))
    (function I_counter c -> Some c | _ -> None)

let gauge name =
  register name
    (fun () -> I_gauge (Atomic.make 0.0))
    (function I_gauge g -> Some g | _ -> None)

let histogram name =
  register name
    (fun () ->
      I_hist
        { counts = Array.init n_buckets (fun _ -> Atomic.make 0);
          sum = 0.0;
          sum_lock = Mutex.create () })
    (function I_hist h -> Some h | _ -> None)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)
let counter_value c = Atomic.get c
let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let bucket_of v =
  if v <= 1.0 then 0
  else begin
    (* smallest i with v <= 2^i *)
    let rec go i ub =
      if i >= n_buckets - 1 || v <= ub then i else go (i + 1) (ub *. 2.0)
    in
    go 1 2.0
  end

let observe h v =
  let v = if Float.is_nan v || v < 0.0 then 0.0 else v in
  ignore (Atomic.fetch_and_add h.counts.(bucket_of v) 1);
  Mutex.lock h.sum_lock;
  h.sum <- h.sum +. v;
  Mutex.unlock h.sum_lock

type hist_view = { count : int; sum : float; buckets : (float * int) list }
type data = Counter_v of int | Gauge_v of float | Hist_v of hist_view
type snapshot = { metric : string; data : data }

let view_hist h =
  let count = ref 0 and buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    let n = Atomic.get h.counts.(i) in
    if n > 0 then begin
      count := !count + n;
      buckets := (Float.of_int 2 ** Float.of_int i, n) :: !buckets
    end
  done;
  Mutex.lock h.sum_lock;
  let sum = h.sum in
  Mutex.unlock h.sum_lock;
  { count = !count; sum; buckets = !buckets }

let snapshot () =
  Mutex.lock registry_lock;
  let all = Hashtbl.fold (fun name i acc -> (name, i) :: acc) registry [] in
  Mutex.unlock registry_lock;
  all
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (metric, i) ->
         let data =
           match i with
           | I_counter c -> Counter_v (Atomic.get c)
           | I_gauge g -> Gauge_v (Atomic.get g)
           | I_hist h -> Hist_v (view_hist h)
         in
         { metric; data })

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ i ->
      match i with
      | I_counter c -> Atomic.set c 0
      | I_gauge g -> Atomic.set g 0.0
      | I_hist h ->
        Array.iter (fun a -> Atomic.set a 0) h.counts;
        Mutex.lock h.sum_lock;
        h.sum <- 0.0;
        Mutex.unlock h.sum_lock)
    registry;
  Mutex.unlock registry_lock

let pp_snapshot ppf snaps =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i { metric; data } ->
      if i > 0 then Format.fprintf ppf "@,";
      match data with
      | Counter_v n -> Format.fprintf ppf "%-40s %12d" metric n
      | Gauge_v v -> Format.fprintf ppf "%-40s %12.4f" metric v
      | Hist_v h ->
        Format.fprintf ppf "%-40s count %d, sum %.1f, buckets [%s]" metric
          h.count h.sum
          (String.concat "; "
             (List.map
                (fun (ub, n) -> Printf.sprintf "<=%g: %d" ub n)
                h.buckets)))
    snaps;
  Format.fprintf ppf "@]"
