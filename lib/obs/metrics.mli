(** Process-wide registry of named metric instruments.

    Three instrument kinds: monotonically increasing {e counters},
    last-value {e gauges}, and exponential-bucket {e histograms}.
    Instruments are created (or found) by name — calling {!counter} twice
    with the same name yields the same instrument — so instrumentation
    sites can be written without threading registry state around.

    Unlike span tracing, metrics are always on: updates are single
    atomic operations, and every instrumented site in this repository
    sits at batch granularity (per simulation run, per trace-buffer
    flush, per optimizer pass), never inside a per-access loop.  The
    cache simulator's per-access counters stay in {!Bw_machine.Cache}
    and are published here once per run. *)

type counter
type gauge
type histogram

(** Find or register; raises [Invalid_argument] if [name] is already
    registered as a different kind. *)
val counter : string -> counter

val gauge : string -> gauge
val histogram : string -> histogram

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** Record one observation ([v < 0] is clamped to bucket 0). *)
val observe : histogram -> float -> unit

type hist_view = {
  count : int;
  sum : float;
  buckets : (float * int) list;
      (** [(ub, n)]: [n] observations fell in (previous ub, ub]; only
          non-empty buckets are listed, ascending *)
}

type data = Counter_v of int | Gauge_v of float | Hist_v of hist_view
type snapshot = { metric : string; data : data }

(** Every registered instrument with its current value, sorted by name. *)
val snapshot : unit -> snapshot list

(** Zero every instrument's value; registrations survive. *)
val reset : unit -> unit

val pp_snapshot : Format.formatter -> snapshot list -> unit
