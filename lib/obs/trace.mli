(** Hierarchical span tracing.

    A span is a named, timed interval with key/value attributes; spans
    nest, and the nesting depth at the moment a span begins is recorded
    so consumers can rebuild the tree without parent pointers.  Spans
    are buffered per domain (via [Domain.DLS]) and merged only at
    {!collect} time, so concurrently tracing domains never contend on a
    shared structure.

    Tracing is globally off by default.  When disabled, {!start} returns
    a shared dummy handle and {!finish} returns immediately — the cost
    of an instrumented site is one atomic load and a branch, nothing is
    allocated, and no clock is read.  That guarantee is what lets hot
    paths stay instrumented permanently (see DESIGN.md, "Observability").

    Timestamps are microseconds since the process's trace epoch, taken
    from the wall clock but monotonised per domain (a reading older than
    the previous one in the same domain is clamped), so span durations
    are never negative. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  name : string;
  cat : string;  (** coarse category, e.g. "pass", "simulate", "table" *)
  start_us : float;  (** microseconds since the trace epoch *)
  dur_us : float;
  tid : int;  (** id of the domain that recorded the span *)
  depth : int;  (** nesting depth within that domain when the span began *)
  attrs : (string * value) list;
}

val enabled : unit -> bool
val set_enabled : bool -> unit

(** [with_enabled b f] runs [f] with tracing set to [b], restoring the
    previous setting afterwards (including on exceptions). *)
val with_enabled : bool -> (unit -> 'a) -> 'a

type handle

(** [start name] opens a span.  No-op (and allocation-free) when tracing
    is disabled. *)
val start : ?cat:string -> ?attrs:(string * value) list -> string -> handle

(** Attach further attributes to a running span; appended after the
    [start] attributes.  No-op on a disabled or finished handle. *)
val add_attrs : handle -> (string * value) list -> unit

(** Close the span and append it to the recording domain's buffer.
    Finishing twice is harmless (the second call is ignored). *)
val finish : ?attrs:(string * value) list -> handle -> unit

(** [with_span name f] wraps [f] in a span; [result_attrs] computes
    attributes from [f]'s result once it returns.  If [f] raises, the
    span is finished with an ["error"] attribute and the exception is
    re-raised. *)
val with_span :
  ?cat:string ->
  ?attrs:(string * value) list ->
  ?result_attrs:('a -> (string * value) list) ->
  string ->
  (unit -> 'a) ->
  'a

(** Merge every domain's buffered spans, sorted by start time.  Call
    after worker domains have been joined: a domain still recording
    concurrently may contribute a torn prefix. *)
val collect : unit -> span list

(** Discard all buffered spans (the enabled flag is untouched). *)
val reset : unit -> unit

(** Current trace clock, for consumers that want to timestamp their own
    events on the spans' axis. *)
val now_us : unit -> float
