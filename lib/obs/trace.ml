(* Span tracing with per-domain buffers.  See trace.mli. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  name : string;
  cat : string;
  start_us : float;
  dur_us : float;
  tid : int;
  depth : int;
  attrs : (string * value) list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let with_enabled b f =
  let old = Atomic.get enabled_flag in
  Atomic.set enabled_flag b;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag old) f

(* All spans are timestamped against one process-wide epoch so that
   spans from different domains share an axis. *)
let epoch = Unix.gettimeofday ()

(* Per-domain recording state.  Spans are consed onto [spans]; [depth]
   tracks open spans; [last_us] monotonises the wall clock within the
   domain. *)
type buffer = {
  dom_id : int;
  mutable spans : span list;
  mutable depth : int;
  mutable last_us : float;
}

(* Registry of every domain buffer ever created, guarded by a mutex.
   Registration happens once per domain (DLS initialisation), so the
   lock is far off every hot path. *)
let registry : buffer list ref = ref []
let registry_lock = Mutex.create ()

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom_id = (Domain.self () :> int);
          spans = [];
          depth = 0;
          last_us = 0.0 }
      in
      Mutex.lock registry_lock;
      registry := b :: !registry;
      Mutex.unlock registry_lock;
      b)

let buffer () = Domain.DLS.get buffer_key

let now_in buf =
  let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
  if t < buf.last_us then buf.last_us
  else begin
    buf.last_us <- t;
    t
  end

let now_us () = now_in (buffer ())

type running = {
  r_name : string;
  r_cat : string;
  r_start : float;
  r_depth : int;
  r_buf : buffer;
  mutable r_attrs : (string * value) list;  (* reverse order of groups *)
  mutable r_done : bool;
}

type handle = Disabled | Running of running

let start ?(cat = "") ?(attrs = []) name =
  if not (Atomic.get enabled_flag) then Disabled
  else begin
    let buf = buffer () in
    let depth = buf.depth in
    buf.depth <- depth + 1;
    Running
      { r_name = name;
        r_cat = cat;
        r_start = now_in buf;
        r_depth = depth;
        r_buf = buf;
        r_attrs = attrs;
        r_done = false }
  end

let add_attrs h attrs =
  match h with
  | Disabled -> ()
  | Running r -> if not r.r_done then r.r_attrs <- r.r_attrs @ attrs

let finish ?(attrs = []) h =
  match h with
  | Disabled -> ()
  | Running r ->
    if not r.r_done then begin
      r.r_done <- true;
      let buf = r.r_buf in
      buf.depth <- r.r_depth;
      let stop = now_in buf in
      buf.spans <-
        { name = r.r_name;
          cat = r.r_cat;
          start_us = r.r_start;
          dur_us = stop -. r.r_start;
          tid = buf.dom_id;
          depth = r.r_depth;
          attrs = r.r_attrs @ attrs }
        :: buf.spans
    end

let with_span ?cat ?attrs ?result_attrs name f =
  let h = start ?cat ?attrs name in
  match f () with
  | v ->
    let attrs =
      match (h, result_attrs) with
      | Running _, Some g -> g v
      | _ -> []
    in
    finish ~attrs h;
    v
  | exception e ->
    finish ~attrs:[ ("error", Str (Printexc.to_string e)) ] h;
    raise e

let collect () =
  Mutex.lock registry_lock;
  let buffers = !registry in
  Mutex.unlock registry_lock;
  List.concat_map (fun b -> b.spans) buffers
  |> List.sort (fun a b -> compare (a.start_us, a.tid) (b.start_us, b.tid))

let reset () =
  Mutex.lock registry_lock;
  let buffers = !registry in
  Mutex.unlock registry_lock;
  List.iter (fun b -> b.spans <- []) buffers
