(** Deterministic fault injection.

    The robustness machinery (transactional optimizer stages, the
    crash-tolerant bench harness) is only trustworthy if its recovery
    paths actually run, so this module lets tests and CI arm named
    faults at well-known sites.  A {e site} is a string like
    ["guard.fuse"] or ["harness.table.fig3"]; code crosses a site by
    calling {!check} (or {!cut}), which is a single mutex-guarded
    counter bump when nothing is armed there.

    Trigger policies are deterministic given the site's hit sequence:
    [Nth n] fires exactly once, on the [n]-th crossing; [Every n] fires
    on every [n]-th crossing; [Probability (p, seed)] draws from a
    seeded LCG so the fire pattern is reproducible run to run.  Sites
    may be hit concurrently from several domains — the registry is
    mutex-protected, and hit ordering (hence which domain a fault lands
    on) is the only nondeterminism.

    Armed faults carry an {e action} the crossing code interprets:
    [Raise] means raise {!Injected}; [Corrupt] means apply a
    site-specific corruption (the optimizer guard mutates the stage's
    output IR) — sites with no meaningful corruption treat it as
    [Raise].  [Delay ms] models a straggler rather than a crash: the
    crossing code sleeps for [ms] milliseconds and then continues
    normally; it is how the serve-layer chaos harness injects slow
    computes and stalled sockets.

    The environment/CLI syntax understood by {!arm_spec} is a
    comma-separated list of [SITE=ACTION[@POLICY]]:

    {[ BWC_FAULTS="guard.fuse=raise,serve.compute.delay=delay:100@every:10" ]}

    where [ACTION] is [raise], [corrupt] or [delay[:MS]] (default
    250 ms) and [POLICY] is [nth:N], [every:N] or [prob:P:SEED]
    (default [nth:1]). *)

type policy =
  | Nth of int  (** fire exactly once, on the n-th crossing (1-based) *)
  | Every of int  (** fire on every n-th crossing *)
  | Probability of float * int  (** [(p, seed)]: seeded Bernoulli draw *)

type action =
  | Raise
  | Corrupt
  | Delay of int  (** sleep this many milliseconds, then continue *)

(** Raised (by crossing code) when an armed [Raise] fault fires. *)
exception Injected of string

(** Register a site so [bwc faults] can list it before anything crosses
    it.  Idempotent; the doc string of the first declaration wins. *)
val declare : ?doc:string -> string -> unit

(** Every known site (declared or crossed), sorted by name, with docs. *)
val sites : unit -> (string * string) list

(** [arm site action policy] arms a fault; replaces any previous arming
    of the site.  Raises [Invalid_argument] on a non-positive [Nth]/
    [Every] count or a probability outside [0,1]. *)
val arm : string -> action -> policy -> unit

(** Parse and arm a [SITE=ACTION[@POLICY]][,...] spec (see above). *)
val arm_spec : string -> (unit, string) result

(** Arm from the [BWC_FAULTS] environment variable if set. *)
val arm_from_env : unit -> (unit, string) result

(** Currently armed sites as [(site, rendered spec)] pairs. *)
val armed : unit -> (string * string) list

val disarm_all : unit -> unit

(** Disarm everything and zero all hit/fire counters; declared sites
    remain known. *)
val reset : unit -> unit

(** [check site] records a crossing and returns the armed action if the
    site's policy fires on this crossing.  Also bumps the
    [fault.<site>.fires] metric when it fires. *)
val check : string -> action option

(** [cut site] is [check] for sites with no corruption semantics: both
    [Raise] and [Corrupt] raise {!Injected}, while [Delay ms] sleeps
    and returns. *)
val cut : string -> unit

(** Sleep for [ms] milliseconds (no-op when [ms <= 0]); the helper
    crossing code uses to honour a [Delay] action. *)
val sleep_ms : int -> unit

(** Crossings / fires recorded at a site since the last {!reset}. *)
val hits : string -> int

val fires : string -> int
