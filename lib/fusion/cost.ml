let validate (g : Fusion_graph.t) partitions =
  let n = Fusion_graph.node_count g in
  let flat = List.concat partitions in
  if List.sort compare flat <> List.init n (fun i -> i) then
    Error "not a permutation of the statement positions"
  else begin
    let part_of = Array.make n (-1) in
    List.iteri
      (fun pi nodes -> List.iter (fun v -> part_of.(v) <- pi) nodes)
      partitions;
    let preventing_violation =
      List.find_opt
        (fun (u, v) -> part_of.(u) = part_of.(v))
        g.Fusion_graph.preventing
    in
    match preventing_violation with
    | Some (u, v) ->
      Error
        (Printf.sprintf "fusion-preventing pair %d-%d share a partition" u v)
    | None ->
      let dep_violation =
        Bw_graph.Digraph.fold_edges g.Fusion_graph.deps ~init:None
          ~f:(fun acc u v ->
            match acc with
            | Some _ -> acc
            | None -> if part_of.(u) > part_of.(v) then Some (u, v) else None)
      in
      (match dep_violation with
      | Some (u, v) ->
        Error (Printf.sprintf "dependence %d -> %d flows backwards" u v)
      | None ->
        let unsorted =
          List.exists
            (fun nodes -> List.sort compare nodes <> nodes)
            partitions
        in
        if unsorted then Error "partition members must stay in program order"
        else Ok ())
  end

let arrays_of_partition (g : Fusion_graph.t) nodes =
  List.concat_map
    (fun v -> g.Fusion_graph.nodes.(v).Fusion_graph.arrays)
    nodes
  |> List.sort_uniq compare

let bandwidth_cost g partitions =
  List.fold_left
    (fun acc nodes -> acc + List.length (arrays_of_partition g nodes))
    0 partitions

let shared_arrays (g : Fusion_graph.t) u v =
  let au = g.Fusion_graph.nodes.(u).Fusion_graph.arrays in
  let av = g.Fusion_graph.nodes.(v).Fusion_graph.arrays in
  List.length (List.filter (fun a -> List.mem a av) au)

let edge_weight_cost (g : Fusion_graph.t) partitions =
  let n = Fusion_graph.node_count g in
  let part_of = Array.make n (-1) in
  List.iteri
    (fun pi nodes -> List.iter (fun v -> part_of.(v) <- pi) nodes)
    partitions;
  let total = ref 0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if part_of.(u) <> part_of.(v) then total := !total + shared_arrays g u v
    done
  done;
  !total

let unfused (g : Fusion_graph.t) =
  List.init (Fusion_graph.node_count g) (fun i -> [ i ])

let predicted_traffic ?(machine = Bw_machine.Machine.origin2000)
    (p : Bw_ir.Ast.program) partitions =
  match Bw_transform.Fuse.apply_plan p partitions with
  | Error _ as e -> e
  | Ok fused ->
    Ok
      (Bw_exec.Evaluate.memory_bytes
         (Bw_exec.Evaluate.of_program ~budget:Bw_exec.Evaluate.Microseconds
            ~machine fused))

(* Canonical partition signature: members joined by '.', partitions by
   '|'.  Distinct plans have distinct signatures because members are
   kept ascending and the outer order is execution order. *)
let signature partitions =
  String.concat "|"
    (List.map
       (fun nodes -> String.concat "." (List.map string_of_int nodes))
       partitions)

type memo = {
  table : (string, (float, string) result) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let memo () = { table = Hashtbl.create 256; hits = 0; misses = 0 }
let memo_hits m = m.hits
let memo_misses m = m.misses

let cache_hit_counter = Bw_obs.Metrics.counter "fusion.search.cache_hit"

let predicted_traffic_memo ?machine ~memo p partitions =
  let key = signature partitions in
  match Hashtbl.find_opt memo.table key with
  | Some r ->
    memo.hits <- memo.hits + 1;
    Bw_obs.Metrics.incr cache_hit_counter;
    r
  | None ->
    memo.misses <- memo.misses + 1;
    let r = predicted_traffic ?machine p partitions in
    Hashtbl.add memo.table key r;
    r
