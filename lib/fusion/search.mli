(** Search-based k-way fusion: greedy sequential min-cut, seeded
    simulated annealing with restarts, and an exact set-partition DP as
    the optimality oracle for small instances.

    The paper proves bandwidth-minimal fusion NP-complete and stops at
    the two-partition min-cut ({!Bandwidth_minimal}); this module
    searches the full space of legal k-way partitions instead.  A
    candidate plan is an [int list list] as in {!Cost}: blocks of
    top-level statement positions (ascending) in execution order.

    {b Legality.}  A plan is legal when every fusion-preventing pair
    (from {!Fusion_graph}, i.e. {!Bw_analysis.Depend.fusable} failures
    and non-loop statements) is separated, the dependence graph
    contracted onto the blocks is acyclic, and every block survives the
    pairwise fold of {!Bw_transform.Fuse.apply_plan}.

    {b Objective.}  Candidates are priced in predicted bytes with the
    analytic tier ({!Cost.predicted_traffic}).  Internally each block is
    priced on its own (memoized per block member-list) and the plan
    objective is the sum: for out-of-cache workloads the predictor's
    traffic is additive across top-level statements, so the additive
    objective matches whole-plan pricing while letting the annealer
    re-price only the blocks a move touches and the DP decompose over
    set partitions.  Reported traffic always comes from whole-plan
    {!Cost.predicted_traffic_memo}.

    {b Determinism:} searches are pure functions of [(config, program)].
    The annealer draws from a private [Random.State] seeded with
    [config.seed] and the restart index; nothing here reads or seeds the
    global random state (no [Random.self_init]), so equal inputs produce
    identical plans and stats (wall-clock aside) across runs and
    processes — same contract as {!Bw_workloads.Random_programs}. *)

type engine =
  | Greedy  (** repeated 2-partition min-cut of the heaviest cluster *)
  | Anneal  (** seeded randomized-restart simulated annealing *)
  | Exact  (** memoized set-partition DP, small instances only *)

val engine_to_string : engine -> string
val engine_of_string : string -> engine option

type config = {
  engine : engine;
  machine : Bw_machine.Machine.t;  (** pricing machine model *)
  seed : int;  (** annealing RNG seed; unused by Greedy/Exact *)
  restarts : int;  (** annealing restarts (even: from greedy, odd: unfused) *)
  steps : int;  (** annealing steps per restart *)
  exact_limit : int;  (** node-count cap for {!Exact} (default 12) *)
}

(** Defaults: [Anneal] on [origin2000], [seed 1], 2 restarts of 1300
    steps, [exact_limit 12]. *)
val default_config :
  ?engine:engine -> ?machine:Bw_machine.Machine.t -> ?seed:int -> unit -> config

type stats = {
  engine : engine;
  nodes : int;  (** top-level statements = fusion-graph nodes *)
  candidates : int;  (** candidate partitions priced by this search *)
  cache_hits : int;  (** block-memo + plan-memo hits *)
  plan : int list list;  (** the winning plan *)
  greedy_plan : int list list;  (** the greedy baseline's plan *)
  objective : float;  (** additive block objective of [plan], bytes *)
  greedy_objective : float;  (** same objective on [greedy_plan] *)
  traffic : float;  (** whole-plan predicted traffic of [plan], bytes *)
  greedy_traffic : float;
  input_traffic : float;  (** predicted traffic of the unfused input *)
  accepted : bool;  (** did {!run} commit the plan? *)
  wall_ms : float;  (** search wall-clock *)
}

(** [plan config p] searches for a fusion plan.  Always also computes
    the greedy baseline (for [greedy_*] stats).  Runs under a
    ["fusion.search"] span; candidate counts and memo hits are
    published as [fusion.search.candidates] / [fusion.search.cache_hit]
    in {!Bw_obs.Metrics}.  Errors on an empty program, an [Exact]
    request beyond [exact_limit], or an internally invalid plan (a
    bug). *)
val plan :
  config -> Bw_ir.Ast.program -> (int list list * stats, string) result

(** [run config p] is {!plan} plus commitment: the winning plan is
    applied with {!Bw_transform.Fuse.apply_plan} and kept only when the
    predictor prices it no worse than the input {e and} the
    dependence-preservation lint ({!Bw_analysis.Preserve}) is clean;
    otherwise the input program is returned with [accepted = false].
    Decisions are counted under [fusion.search.accept] /
    [fusion.search.reject]. *)
val run :
  config -> Bw_ir.Ast.program -> (Bw_ir.Ast.program * stats, string) result

(** Total wrapper for pipeline wiring: {!run}'s program, or [p]
    unchanged if the search errs.  Suitable as the [fuse_search]
    argument of [Bw_transform.Strategy.run_guarded]. *)
val stage : config -> Bw_ir.Ast.program -> Bw_ir.Ast.program

(** One-line summary (engine, nodes, partitions, candidates, memo hits,
    wall-clock, predicted before/after MB). *)
val pp_stats : Format.formatter -> stats -> unit
