type engine = Greedy | Anneal | Exact

let engine_to_string = function
  | Greedy -> "greedy"
  | Anneal -> "anneal"
  | Exact -> "exact"

let engine_of_string = function
  | "greedy" -> Some Greedy
  | "anneal" -> Some Anneal
  | "exact" -> Some Exact
  | _ -> None

type config = {
  engine : engine;
  machine : Bw_machine.Machine.t;
  seed : int;
  restarts : int;
  steps : int;
  exact_limit : int;
}

let default_config ?(engine = Anneal)
    ?(machine = Bw_machine.Machine.origin2000) ?(seed = 1) () =
  { engine; machine; seed; restarts = 2; steps = 1300; exact_limit = 12 }

type stats = {
  engine : engine;
  nodes : int;
  candidates : int;
  cache_hits : int;
  plan : int list list;
  greedy_plan : int list list;
  objective : float;
  greedy_objective : float;
  traffic : float;
  greedy_traffic : float;
  input_traffic : float;
  accepted : bool;
  wall_ms : float;
}

let candidates_counter = Bw_obs.Metrics.counter "fusion.search.candidates"
let accept_counter = Bw_obs.Metrics.counter "fusion.search.accept"
let reject_counter = Bw_obs.Metrics.counter "fusion.search.reject"
let cache_hit_counter = Bw_obs.Metrics.counter "fusion.search.cache_hit"

(* ------------------------------------------------------------------ *)
(* Search context: the fusion graph plus the pricing memo tables.     *)

type ctx = {
  g : Fusion_graph.t;
  p : Bw_ir.Ast.program;
  machine : Bw_machine.Machine.t;
  stmts : Bw_ir.Ast.stmt array;
  n : int;
  prevent : bool array array;
  succ_of : int list array;  (** dependence successors per node *)
  (* Per-block analytic price, keyed on the block's member list.  [None]
     marks a block the fold fusion cannot build (infeasible).  Blocks
     recur across candidate plans far more than whole plans do, so this
     table carries most of the memoisation weight. *)
  block_memo : (string, float option) Hashtbl.t;
  plan_memo : Cost.memo;
  mutable candidates : int;
  mutable block_hits : int;
  sharers : int array array;  (** nodes sharing >=1 array, per node *)
}

(* Statements whose relative order is observable even without a data
   dependence: prints append to the output trace, reads consume the
   input stream.  The dependence graph alone would let the search
   reorder two prints of unrelated values, which changes the observation
   the validators compare, so we chain them explicitly. *)
let rec observable (s : Bw_ir.Ast.stmt) =
  match s with
  | Bw_ir.Ast.Print _ | Bw_ir.Ast.Read_input _ -> true
  | Bw_ir.Ast.Assign _ -> false
  | Bw_ir.Ast.For l -> List.exists observable l.Bw_ir.Ast.body
  | Bw_ir.Ast.If (_, t, e) -> List.exists observable t || List.exists observable e

let make_ctx ~machine p =
  let g = Fusion_graph.build p in
  let n = Fusion_graph.node_count g in
  let prevent = Array.make_matrix n n false in
  List.iter
    (fun (u, v) ->
      prevent.(u).(v) <- true;
      prevent.(v).(u) <- true)
    g.Fusion_graph.preventing;
  let succ_of =
    Array.init n (fun v -> Bw_graph.Digraph.succ g.Fusion_graph.deps v)
  in
  (* chain observable statements in program order *)
  let _ =
    List.fold_left
      (fun prev (v, s) ->
        if not (observable s) then prev
        else begin
          (match prev with
          | Some u when not (List.mem v succ_of.(u)) ->
            succ_of.(u) <- v :: succ_of.(u)
          | _ -> ());
          Some v
        end)
      None
      (List.mapi (fun v s -> (v, s)) p.Bw_ir.Ast.body)
  in
  let sharers =
    let by_array = Hashtbl.create 32 in
    Array.iteri
      (fun v node ->
        List.iter
          (fun a ->
            Hashtbl.replace by_array a
              (v :: Option.value (Hashtbl.find_opt by_array a) ~default:[]))
          node.Fusion_graph.arrays)
      g.Fusion_graph.nodes;
    let sets = Array.make n [] in
    Hashtbl.iter
      (fun _ vs ->
        List.iter
          (fun v ->
            sets.(v) <- List.filter (fun w -> w <> v) vs @ sets.(v))
          vs)
      by_array;
    Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) sets
  in
  { g;
    p;
    machine;
    stmts = Array.of_list p.Bw_ir.Ast.body;
    n;
    prevent;
    succ_of;
    block_memo = Hashtbl.create 512;
    plan_memo = Cost.memo ();
    candidates = 0;
    block_hits = 0;
    sharers }

let block_key members = String.concat "." (List.map string_of_int members)

(* Price one block: the analytic predicted traffic of a mini-program
   holding only the block's statements, fused into a single partition.
   The predictor's cross-statement reuse is only free when a scope fits
   in cache, so for out-of-cache workloads the whole-plan traffic is the
   sum of its block prices — which is what makes an additive objective
   (and therefore incremental re-pricing and a set-partition DP) sound. *)
let block_cost ctx members =
  let key = block_key members in
  match Hashtbl.find_opt ctx.block_memo key with
  | Some c ->
    ctx.block_hits <- ctx.block_hits + 1;
    Bw_obs.Metrics.incr cache_hit_counter;
    c
  | None ->
    let body = List.map (fun v -> ctx.stmts.(v)) members in
    let mini = { ctx.p with Bw_ir.Ast.body } in
    let plan = [ List.init (List.length members) (fun i -> i) ] in
    let c =
      match Cost.predicted_traffic ~machine:ctx.machine mini plan with
      | Ok t -> Some t
      | Error _ -> None
    in
    Hashtbl.add ctx.block_memo key c;
    c

(* Additive objective of a candidate plan; [None] if any block is
   infeasible.  Block order does not matter, so move evaluation only
   re-prices the touched blocks (via the memo). *)
let objective ctx partitions =
  ctx.candidates <- ctx.candidates + 1;
  List.fold_left
    (fun acc members ->
      match (acc, block_cost ctx members) with
      | Some total, Some c -> Some (total +. c)
      | _ -> None)
    (Some 0.0) partitions

let has_preventing ctx members =
  let rec pairs = function
    | [] -> false
    | u :: rest -> List.exists (fun v -> ctx.prevent.(u).(v)) rest || pairs rest
  in
  pairs members

(* Contract the dependence graph onto the given blocks and topologically
   order them; [None] when the contraction has a cycle.  The result is
   the execution order {!Cost.validate} accepts. *)
let topo_order ctx blocks =
  let blocks = Array.of_list blocks in
  let k = Array.length blocks in
  let block_of = Array.make ctx.n (-1) in
  Array.iteri
    (fun bi members -> List.iter (fun v -> block_of.(v) <- bi) members)
    blocks;
  let bg = Bw_graph.Digraph.create ~size_hint:k () in
  Bw_graph.Digraph.ensure_nodes bg k;
  Array.iteri
    (fun bi members ->
      List.iter
        (fun u ->
          List.iter
            (fun w ->
              if block_of.(w) <> bi then
                Bw_graph.Digraph.add_edge bg bi block_of.(w))
            ctx.succ_of.(u))
        members)
    blocks;
  match Bw_graph.Topo.sort bg with
  | None -> None
  | Some order -> Some (List.map (fun bi -> blocks.(bi)) order)

(* ------------------------------------------------------------------ *)
(* Greedy sequential min-cut                                          *)

let footprint ctx members =
  let arrays =
    List.concat_map
      (fun v -> ctx.g.Fusion_graph.nodes.(v).Fusion_graph.arrays)
      members
    |> List.sort_uniq compare
  in
  List.fold_left
    (fun acc a ->
      match Bw_ir.Ast.find_decl ctx.p a with
      | Some d -> acc +. float_of_int (Bw_ir.Ast.decl_bytes d)
      | None -> acc)
    0.0 arrays

let preventing_within ctx members =
  let rec pairs = function
    | [] -> []
    | u :: rest ->
      List.filter_map
        (fun v -> if ctx.prevent.(u).(v) then Some (u, v) else None)
        rest
      @ pairs rest
  in
  pairs members

let orient ctx u v =
  if Bw_graph.Topo.has_path ctx.g.Fusion_graph.deps u v then (v, u) else (u, v)

(* How many preventing pairs each forced bisection tries: the greedy
   baseline stays fast on 200-loop instances by sampling the heaviest
   few pairs instead of all of them (multi_partition tries every pair,
   which is quadratic in the reduction count). *)
let pair_budget = 4

(* The hyper-graph min-cut is O(E^3) and every dependence edge inside
   the cluster contributes three enforcement hyper-edges, so it is only
   affordable on small, sparse clusters; larger ones fall back to the
   positional split below. *)
let mincut_edge_budget = 150

let cluster_edges ctx members =
  let inside = Array.make ctx.n false in
  List.iter (fun v -> inside.(v) <- true) members;
  let deps =
    List.fold_left
      (fun acc u ->
        acc + List.length (List.filter (fun w -> inside.(w)) ctx.succ_of.(u)))
      0 members
  in
  let arrays =
    List.concat_map
      (fun v -> ctx.g.Fusion_graph.nodes.(v).Fusion_graph.arrays)
      members
    |> List.sort_uniq compare |> List.length
  in
  (3 * deps) + arrays

(* Cheap always-legal bisection of a cluster: members are in ascending
   statement position and top-level dependences flow forward in
   position, so every positional prefix is dependence-closed.  Pick the
   prefix boundary that separates at least one preventing pair at the
   lowest array-count cost (the same objective the min-cut optimises). *)
let positional_split ctx members pairs =
  let arr = Array.of_list members in
  let k = Array.length arr in
  let idx = Hashtbl.create k in
  Array.iteri (fun i v -> Hashtbl.add idx v i) arr;
  let separates = Array.make (max 1 (k - 1)) false in
  List.iter
    (fun (u, v) ->
      let iu = min (Hashtbl.find idx u) (Hashtbl.find idx v)
      and iv = max (Hashtbl.find idx u) (Hashtbl.find idx v) in
      for b = iu to iv - 1 do
        separates.(b) <- true
      done)
    pairs;
  let arrays_of v = ctx.g.Fusion_graph.nodes.(v).Fusion_graph.arrays in
  let cost_at b =
    (* arrays touched by prefix [0..b] plus arrays touched by the rest *)
    let prefix = Hashtbl.create 16 and suffix = Hashtbl.create 16 in
    Array.iteri
      (fun i v ->
        List.iter
          (fun a -> Hashtbl.replace (if i <= b then prefix else suffix) a ())
          (arrays_of v))
      arr;
    Hashtbl.length prefix + Hashtbl.length suffix
  in
  let best = ref None in
  for b = 0 to k - 2 do
    if separates.(b) then begin
      let c = cost_at b in
      match !best with
      | Some (bc, _) when bc <= c -> ()
      | _ -> best := Some (c, b)
    end
  done;
  let _, b = Option.get !best in
  ( Array.to_list (Array.sub arr 0 (b + 1)),
    Array.to_list (Array.sub arr (b + 1) (k - b - 1)) )

(* Split a fold-infeasible block at its longest feasible prefix; a
   single statement always prices, so this terminates. *)
let rec repair ctx members =
  if block_cost ctx members <> None then [ members ]
  else begin
    let arr = Array.of_list members in
    let k = Array.length arr in
    let rec longest j =
      if j <= 1 then 1
      else if block_cost ctx (Array.to_list (Array.sub arr 0 j)) <> None then j
      else longest (j - 1)
    in
    let j = longest (k - 1) in
    Array.to_list (Array.sub arr 0 j)
    :: repair ctx (Array.to_list (Array.sub arr j (k - j)))
  end

let greedy_plan ctx =
  let rec solve clusters done_ =
    let pending, legal =
      List.partition (fun c -> preventing_within ctx c <> []) clusters
    in
    let done_ = legal @ done_ in
    match pending with
    | [] -> done_
    | _ ->
      (* heaviest cluster first: largest distinct-array footprint,
         breaking ties on size then first member (deterministic) *)
      let weight c = (footprint ctx c, List.length c, -List.hd c) in
      let heaviest =
        List.fold_left
          (fun best c ->
            if weight c > weight best then c else best)
          (List.hd pending) (List.tl pending)
      in
      let rest = List.filter (fun c -> c != heaviest) pending in
      let pairs =
        preventing_within ctx heaviest
        |> List.sort (fun (u1, v1) (u2, v2) ->
               compare
                 (footprint ctx [ u2; v2 ], (u1, v1))
                 (footprint ctx [ u1; v1 ], (u2, v2)))
      in
      let first, second =
        if cluster_edges ctx heaviest > mincut_edge_budget then
          positional_split ctx heaviest pairs
        else begin
          let pairs = List.filteri (fun i _ -> i < pair_budget) pairs in
          let best_split =
            List.fold_left
              (fun acc (u, v) ->
                let s, t = orient ctx u v in
                let split =
                  Bandwidth_minimal.two_partition ctx.g ~within:heaviest ~s ~t
                in
                let cost =
                  Cost.bandwidth_cost ctx.g
                    [ split.Bandwidth_minimal.first;
                      split.Bandwidth_minimal.second ]
                in
                match acc with
                | Some (c, _) when c <= cost -> acc
                | _ -> Some (cost, split))
              None pairs
          in
          let split = snd (Option.get best_split) in
          (split.Bandwidth_minimal.first, split.Bandwidth_minimal.second)
        end
      in
      solve (first :: second :: rest) done_
  in
  let clusters = solve [ List.init ctx.n (fun i -> i) ] [] in
  let blocks = List.concat_map (repair ctx) clusters in
  (* deterministic block ids before contraction *)
  let blocks = List.sort compare blocks in
  match topo_order ctx blocks with
  | Some plan -> plan
  | None ->
    (* the min-cut's dependence enforcement makes this unreachable;
       fall back rather than raise inside a search *)
    List.init ctx.n (fun i -> [ i ])

(* ------------------------------------------------------------------ *)
(* Randomized-restart simulated annealing                             *)

(* State: an assignment node -> block id.  Moves rebuild only the
   touched blocks; pricing goes through the block memo. *)

let blocks_of_assignment asg n =
  let tbl = Hashtbl.create 32 in
  for v = n - 1 downto 0 do
    let b = asg.(v) in
    Hashtbl.replace tbl b (v :: (Option.value (Hashtbl.find_opt tbl b) ~default:[]))
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort compare

let assignment_of_plan plan n =
  let asg = Array.make n (-1) in
  List.iteri (fun bi members -> List.iter (fun v -> asg.(v) <- bi) members) plan;
  asg

(* objective of the blocks containing exactly the given block ids *)
let cost_of_ids ctx asg ids =
  let members_of b =
    let rec collect v acc =
      if v < 0 then acc
      else collect (v - 1) (if asg.(v) = b then v :: acc else acc)
    in
    collect (ctx.n - 1) []
  in
  List.fold_left
    (fun acc b ->
      match acc with
      | None -> None
      | Some total -> (
        match members_of b with
        | [] -> acc
        | members ->
          if has_preventing ctx members then None
          else
            (match block_cost ctx members with
            | None -> None
            | Some c -> Some (total +. c))))
    (Some 0.0) (List.sort_uniq compare ids)

let acyclic ctx asg =
  (* block ids are arbitrary ints (fresh blocks keep incrementing), so
     densify them before building the contracted graph *)
  let dense = Hashtbl.create 32 in
  let id b =
    match Hashtbl.find_opt dense b with
    | Some i -> i
    | None ->
      let i = Hashtbl.length dense in
      Hashtbl.add dense b i;
      i
  in
  let bg = Bw_graph.Digraph.create ~size_hint:ctx.n () in
  Bw_graph.Digraph.ensure_nodes bg ctx.n;
  for u = 0 to ctx.n - 1 do
    List.iter
      (fun w ->
        if asg.(u) <> asg.(w) then
          Bw_graph.Digraph.add_edge bg (id asg.(u)) (id asg.(w)))
      ctx.succ_of.(u)
  done;
  Bw_graph.Topo.is_acyclic bg

let anneal ctx cfg start =
  let best = ref start in
  let best_cost =
    ref (Option.value (objective ctx start) ~default:infinity)
  in
  (* temperature is relative to the average block price of the start
     state, so "one small array's worth" of regression is acceptable
     early and nothing is acceptable late *)
  let t0 = 1.0 and t_end = 0.01 in
  let run_restart r init_plan =
    let rng = Random.State.make [| cfg.seed; r; 0x5ea7c4 |] in
    let asg = assignment_of_plan init_plan ctx.n in
    let next_id = ref (List.length init_plan) in
    let cur = ref (Option.value (objective ctx init_plan) ~default:infinity) in
    let scale =
      if Float.is_finite !cur && !cur > 0.0 then
        !cur /. float_of_int (List.length init_plan)
      else 1.0
    in
    for step = 0 to cfg.steps - 1 do
      let temp =
        t0 *. ((t_end /. t0) ** (float_of_int step /. float_of_int cfg.steps))
      in
      (* proposal kinds: a targeted merge walks a hyper-edge (merge the
         blocks of two loops sharing an array — the move that actually
         removes traffic), a random merge keeps the chain irreducible,
         and a node move/split (move to a fresh block) undoes bad
         agglomeration.  Weights 5:2:5. *)
      let merge_of u w =
        let bu = asg.(u) and bw = asg.(w) in
        if bu = bw then ([], fun () -> ())
        else
          ( [ bu; bw ],
            fun () ->
              for v = 0 to ctx.n - 1 do
                if asg.(v) = bw then asg.(v) <- bu
              done )
      in
      let move_to u target =
        if target = asg.(u) then ([], fun () -> ())
        else ([ asg.(u); target ], fun () -> asg.(u) <- target)
      in
      let random_sharer u =
        let sh = ctx.sharers.(u) in
        if Array.length sh = 0 then None
        else Some sh.(Random.State.int rng (Array.length sh))
      in
      let touched, apply =
        match Random.State.int rng 12 with
        | 0 | 1 | 2 -> (
          (* targeted merge along a shared array *)
          let u = Random.State.int rng ctx.n in
          match random_sharer u with
          | None -> ([], fun () -> ())
          | Some w -> merge_of u w)
        | 3 ->
          let u = Random.State.int rng ctx.n
          and w = Random.State.int rng ctx.n in
          merge_of u w
        | 4 | 5 | 6 | 7 -> (
          (* targeted node move: chase a shared array into its block —
             the move that escapes greedy's contiguous fragmentation,
             where whole-block merges are vetoed by the preventing
             reductions both blocks contain *)
          let u = Random.State.int rng ctx.n in
          match random_sharer u with
          | None -> ([], fun () -> ())
          | Some w -> move_to u asg.(w))
        | _ ->
          let u = Random.State.int rng ctx.n in
          if Random.State.bool rng then begin
            (* fresh block: splits u out of its current block *)
            incr next_id;
            move_to u !next_id
          end
          else move_to u asg.(Random.State.int rng ctx.n)
      in
      match touched with
      | [] -> ()
      | ids -> (
        match cost_of_ids ctx asg ids with
        | None -> () (* current state must be legal; just skip *)
        | Some before_cost ->
          let saved = Array.copy asg in
          apply ();
          (match cost_of_ids ctx asg ids with
          | None -> Array.blit saved 0 asg 0 ctx.n
          | Some after_cost ->
            if not (acyclic ctx asg) then Array.blit saved 0 asg 0 ctx.n
            else begin
              ctx.candidates <- ctx.candidates + 1;
              let delta = (after_cost -. before_cost) /. scale in
              let accept =
                delta <= 0.0
                || Random.State.float rng 1.0 < exp (-.delta /. temp)
              in
              if not accept then Array.blit saved 0 asg 0 ctx.n
              else begin
                cur := !cur -. before_cost +. after_cost;
                if !cur < !best_cost -. 1e-9 then begin
                  match topo_order ctx (blocks_of_assignment asg ctx.n) with
                  | Some plan ->
                    best := plan;
                    best_cost := !cur
                  | None -> ()
                end
              end
            end))
    done
  in
  let unfused = List.init ctx.n (fun v -> [ v ]) in
  for r = 0 to cfg.restarts - 1 do
    run_restart r (if r mod 2 = 0 then start else unfused)
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Exact set-partition DP (optimality oracle)                         *)

(* f(S) = cheapest partitioning of the node set S into an execution
   suffix: peel the last block B (legal, no dependence leaving B into
   S \ B), pay its price, recurse on S \ B.  Memoized on the bitmask;
   every ordered legal plan can be peeled this way, so the DP is exact
   for the additive objective. *)
let exact ctx cfg =
  if ctx.n > cfg.exact_limit then
    Error
      (Printf.sprintf "exact engine: %d nodes exceeds the limit of %d"
         ctx.n cfg.exact_limit)
  else begin
    let n = ctx.n in
    let full = (1 lsl n) - 1 in
    let prevent_mask = Array.make n 0 in
    let succ_mask = Array.make n 0 in
    for v = 0 to n - 1 do
      for w = 0 to n - 1 do
        if ctx.prevent.(v).(w) then
          prevent_mask.(v) <- prevent_mask.(v) lor (1 lsl w)
      done;
      List.iter
        (fun w -> succ_mask.(v) <- succ_mask.(v) lor (1 lsl w))
        ctx.succ_of.(v)
    done;
    let members_of mask =
      let rec go v acc =
        if v < 0 then acc
        else go (v - 1) (if mask land (1 lsl v) <> 0 then v :: acc else acc)
      in
      go (n - 1) []
    in
    let memo : (int, (float * int) option) Hashtbl.t = Hashtbl.create 1024 in
    (* price of the best partitioning of [mask]; the int is the best
       last block *)
    let rec solve mask =
      if mask = 0 then Some (0.0, 0)
      else
        match Hashtbl.find_opt memo mask with
        | Some r -> r
        | None ->
          let best = ref None in
          (* enumerate non-empty submasks of mask as candidate last blocks *)
          let b = ref mask in
          while !b <> 0 do
            let block = !b in
            let rest = mask land lnot block in
            let legal =
              let rec check m =
                if m = 0 then true
                else begin
                  let v = m land -m in
                  let vi =
                    (* log2 of the lowest set bit *)
                    let rec lg i x = if x = 1 then i else lg (i + 1) (x lsr 1) in
                    lg 0 v
                  in
                  prevent_mask.(vi) land block = 0
                  && succ_mask.(vi) land rest = 0
                  && check (m land (m - 1))
                end
              in
              check block
            in
            (if legal then
               match block_cost ctx (members_of block) with
               | None -> ()
               | Some c -> (
                 ctx.candidates <- ctx.candidates + 1;
                 match solve rest with
                 | None -> ()
                 | Some (crest, _) -> (
                   let total = c +. crest in
                   match !best with
                   | Some (bc, _) when bc <= total -> ()
                   | _ -> best := Some (total, block))));
            b := (!b - 1) land mask
          done;
          Hashtbl.add memo mask !best;
          !best
    in
    match solve full with
    | None -> Error "exact engine: no legal partitioning"
    | Some _ ->
      (* reconstruct by peeling best last blocks *)
      let rec rebuild mask acc =
        if mask = 0 then acc
        else
          match Hashtbl.find_opt memo mask with
          | Some (Some (_, block)) ->
            rebuild (mask land lnot block) (members_of block :: acc)
          | _ -> acc
      in
      Ok (rebuild full [])
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)

let full_traffic ctx plan =
  match Cost.predicted_traffic_memo ~machine:ctx.machine ~memo:ctx.plan_memo
          ctx.p plan
  with
  | Ok t -> t
  | Error _ -> infinity

let plan (cfg : config) (p : Bw_ir.Ast.program) =
  if p.Bw_ir.Ast.body = [] then Error "empty program"
  else begin
    let started = Bw_obs.Trace.now_us () in
    let ctx = make_ctx ~machine:cfg.machine p in
    Bw_obs.Trace.with_span ~cat:"fusion"
      ~attrs:
        [ ("engine", Bw_obs.Trace.Str (engine_to_string cfg.engine));
          ("nodes", Bw_obs.Trace.Int ctx.n);
          ("seed", Bw_obs.Trace.Int cfg.seed) ]
      ~result_attrs:(fun r ->
        match r with
        | Error _ -> [ ("error", Bw_obs.Trace.Str "search failed") ]
        | Ok (_, st) ->
          [ ("partitions", Bw_obs.Trace.Int (List.length st.plan));
            ("candidates", Bw_obs.Trace.Int st.candidates);
            ("cache_hits", Bw_obs.Trace.Int st.cache_hits) ])
      "fusion.search"
    @@ fun () ->
    let greedy = greedy_plan ctx in
    let chosen =
      match cfg.engine with
      | Greedy -> Ok greedy
      | Anneal -> Ok (anneal ctx cfg greedy)
      | Exact -> exact ctx cfg
    in
    match chosen with
    | Error _ as e -> e
    | Ok best -> (
      match Cost.validate ctx.g best with
      | Error reason -> Error ("search produced an invalid plan: " ^ reason)
      | Ok () ->
        let obj plan' = Option.value (objective ctx plan') ~default:infinity in
        let unfused_plan = List.init ctx.n (fun v -> [ v ]) in
        let traffic = full_traffic ctx best in
        let greedy_traffic = full_traffic ctx greedy in
        let input_traffic = full_traffic ctx unfused_plan in
        Bw_obs.Metrics.incr ~by:ctx.candidates candidates_counter;
        let stats =
          { engine = cfg.engine;
            nodes = ctx.n;
            candidates = ctx.candidates;
            cache_hits = ctx.block_hits + Cost.memo_hits ctx.plan_memo;
            plan = best;
            greedy_plan = greedy;
            objective = obj best;
            greedy_objective = obj greedy;
            traffic;
            greedy_traffic;
            input_traffic;
            accepted = false;
            wall_ms = (Bw_obs.Trace.now_us () -. started) /. 1e3 }
        in
        Ok (best, stats))
  end

let run (cfg : config) (p : Bw_ir.Ast.program) =
  match plan cfg p with
  | Error _ as e -> e
  | Ok (best, stats) ->
    (* commit only a predicted win; the caller's Guard / analytic gate
       re-checks, this keeps a declined search a visible no-op *)
    if stats.traffic > stats.input_traffic then begin
      Bw_obs.Metrics.incr reject_counter;
      Ok (p, { stats with accepted = false })
    end
    else begin
      match Bw_transform.Fuse.apply_plan p best with
      | Error _ as e -> e
      | Ok fused ->
        if
          Result.is_ok (Bw_ir.Check.check fused)
          && Bw_analysis.Preserve.lint_ok ~before:p ~after:fused
        then begin
          Bw_obs.Metrics.incr accept_counter;
          Ok (fused, { stats with accepted = true })
        end
        else begin
          Bw_obs.Metrics.incr reject_counter;
          Ok (p, { stats with accepted = false })
        end
    end

let stage (cfg : config) (p : Bw_ir.Ast.program) =
  match run cfg p with Ok (p', _) -> p' | Error _ -> p

let pp_stats ppf st =
  Format.fprintf ppf
    "fuse-search(%s): %d nodes -> %d partitions, %d candidates (%d cached), \
     %.1f ms, predicted %.2f MB -> %.2f MB"
    (engine_to_string st.engine) st.nodes (List.length st.plan) st.candidates
    st.cache_hits st.wall_ms (st.input_traffic /. 1e6) (st.traffic /. 1e6)
