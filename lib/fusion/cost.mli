(** Objectives and correctness constraints over partition sequences.

    A partition sequence is [int list list]: each inner list holds
    top-level statement positions (ascending), and the outer order is the
    execution order of the fused partitions. *)

(** Problem 3.1's correctness constraints: every node exactly once, no
    fusion-preventing pair inside a partition, and every dependence edge
    flowing to the same or a later partition. *)
val validate : Fusion_graph.t -> int list list -> (unit, string) result

(** The paper's objective: sum over partitions of the number of distinct
    arrays the partition accesses (= total arrays loaded from memory). *)
val bandwidth_cost : Fusion_graph.t -> int list list -> int

(** The Gao et al. / Kennedy-McKinley objective this paper argues
    against: total number of (loop, loop, shared array) coincidences
    crossing partition boundaries, counted pairwise with edge weights. *)
val edge_weight_cost : Fusion_graph.t -> int list list -> int

(** Cost with no fusion at all: each statement its own partition. *)
val unfused : Fusion_graph.t -> int list list

(** Shared-array count between two nodes (the edge weight of the
    classical formulation). *)
val shared_arrays : Fusion_graph.t -> int -> int -> int

(** [predicted_traffic ?machine p partitions] prices a partition
    sequence in {e bytes} rather than array counts: the plan is applied
    with {!Bw_transform.Fuse.apply_plan} and the resulting program is
    scored with the analytic tier of the tiered evaluator
    ({!Bw_exec.Evaluate} at [Microseconds] budget — closed-form, no
    execution) on [machine] (default
    {!Bw_machine.Machine.origin2000}).  Returns the predicted
    memory-bus traffic of the fused program, or the plan-application
    error.  Unlike {!bandwidth_cost}, this accounts for array sizes,
    cache capacities, line granularity and writebacks, so it can rank
    plans that touch the same arrays different numbers of times. *)
val predicted_traffic :
  ?machine:Bw_machine.Machine.t ->
  Bw_ir.Ast.program ->
  int list list ->
  (float, string) result

(** Canonical key for a partition sequence: ["0.2|1|3.4"] — members
    joined by ['.'], partitions by ['|'].  Injective over valid plans
    (members ascending, outer order = execution order), so it can key
    memo tables and result caches. *)
val signature : int list list -> string

(** A per-search memo table for {!predicted_traffic}, keyed on
    {!signature}.  Search engines revisit the same partition many times
    (annealing moves are frequently undone); a memo turns every repeat
    into one hash lookup.  Hits are also counted in {!Bw_obs.Metrics}
    under [fusion.search.cache_hit]. *)
type memo

(** A fresh, empty memo.  Memos are scoped to one (program, machine)
    pair — do not share a memo across different programs or machines,
    the signature does not encode either. *)
val memo : unit -> memo

val memo_hits : memo -> int
val memo_misses : memo -> int

(** [predicted_traffic_memo ?machine ~memo p partitions] is
    {!predicted_traffic} with results cached in [memo]. *)
val predicted_traffic_memo :
  ?machine:Bw_machine.Machine.t ->
  memo:memo ->
  Bw_ir.Ast.program ->
  int list list ->
  (float, string) result
