type split = { first : int list; second : int list; cut_arrays : string list }

(* Orient a preventing pair so the cut terminal [t] is the node that must
   (or may) run first. *)
let orient (g : Fusion_graph.t) u v =
  if Bw_graph.Topo.has_path g.Fusion_graph.deps u v then (v, u) (* s, t *)
  else (u, v)

let two_partition (g : Fusion_graph.t) ~within ~s ~t =
  if not (List.mem s within && List.mem t within) then
    invalid_arg "two_partition: terminals outside the subset";
  let members = List.sort_uniq compare within in
  let m = List.length members in
  let index_of = Hashtbl.create m in
  List.iteri (fun i v -> Hashtbl.add index_of v i) members;
  let local v = Hashtbl.find index_of v in
  let h = Bw_graph.Hypergraph.create ~size_hint:m () in
  Bw_graph.Hypergraph.ensure_nodes h m;
  (* array hyper-edges restricted to the subset *)
  let arrays_in_subset =
    List.filter_map
      (fun (a, e) ->
        let nodes =
          Bw_graph.Hypergraph.edge_nodes g.Fusion_graph.hyper e
          |> List.filter (fun v -> Hashtbl.mem index_of v)
        in
        if nodes = [] then None else Some (a, nodes))
      g.Fusion_graph.edge_of_array
  in
  let edge_to_array = Hashtbl.create 16 in
  List.iter
    (fun (a, nodes) ->
      let e = Bw_graph.Hypergraph.add_edge ~label:a h (List.map local nodes) in
      Hashtbl.add edge_to_array e a)
    arrays_in_subset;
  (* dependence enforcement *)
  let big = List.length arrays_in_subset + 1 in
  Bw_graph.Digraph.iter_edges g.Fusion_graph.deps (fun u v ->
      if Hashtbl.mem index_of u && Hashtbl.mem index_of v then begin
        ignore (Bw_graph.Hypergraph.add_edge ~weight:big h [ local s; local v ]);
        ignore (Bw_graph.Hypergraph.add_edge ~weight:big h [ local v; local u ]);
        ignore (Bw_graph.Hypergraph.add_edge ~weight:big h [ local u; local t ])
      end);
  let r = Bw_graph.Hyper_cut.min_cut h ~s:(local s) ~t:(local t) in
  Bw_obs.Metrics.incr (Bw_obs.Metrics.counter "fusion.mincut.calls");
  Bw_obs.Metrics.observe
    (Bw_obs.Metrics.histogram "fusion.mincut.nodes")
    (float_of_int m);
  Bw_obs.Metrics.observe
    (Bw_obs.Metrics.histogram "fusion.mincut.cut_weight")
    (float_of_int r.Bw_graph.Hyper_cut.value);
  let back locals =
    List.map (fun i -> List.nth members i) locals |> List.sort compare
  in
  let cut_arrays =
    List.filter_map (fun e -> Hashtbl.find_opt edge_to_array e) r.Bw_graph.Hyper_cut.cut
  in
  (* part1 contains s (source side); the t-side executes first *)
  { first = back r.Bw_graph.Hyper_cut.part2;
    second = back r.Bw_graph.Hyper_cut.part1;
    cut_arrays }

let preventing_within (g : Fusion_graph.t) subset =
  List.filter
    (fun (u, v) -> List.mem u subset && List.mem v subset)
    g.Fusion_graph.preventing

let arrays_of (g : Fusion_graph.t) nodes =
  List.concat_map
    (fun v -> g.Fusion_graph.nodes.(v).Fusion_graph.arrays)
    nodes
  |> List.sort_uniq compare |> List.length

let multi_partition (g : Fusion_graph.t) =
  (* bisection rounds of this planning call, reported on the span and
     accumulated in the fusion.bisect.iterations counter *)
  let iterations = ref 0 in
  let rec solve subset =
    match preventing_within g subset with
    | [] -> if subset = [] then [] else [ List.sort compare subset ]
    | pairs ->
      incr iterations;
      (* bisect on the preventing pair whose minimum cut leaves the
         cheapest two-way split (Kennedy-McKinley-style bisection with
         the paper's objective) *)
      let best =
        List.fold_left
          (fun acc (u, v) ->
            let s, t = orient g u v in
            let split = two_partition g ~within:subset ~s ~t in
            let cost =
              arrays_of g split.first + arrays_of g split.second
            in
            match acc with
            | Some (best_cost, _) when best_cost <= cost -> acc
            | _ -> Some (cost, split))
          None pairs
      in
      let { first; second; _ } = snd (Option.get best) in
      solve first @ solve second
  in
  let result =
    Bw_obs.Trace.with_span ~cat:"fusion"
      ~attrs:[ ("nodes", Bw_obs.Trace.Int (Fusion_graph.node_count g)) ]
      ~result_attrs:(fun partitions ->
        [ ("partitions", Bw_obs.Trace.Int (List.length partitions));
          ("iterations", Bw_obs.Trace.Int !iterations) ])
      "fusion:multi_partition"
      (fun () -> solve (List.init (Fusion_graph.node_count g) (fun i -> i)))
  in
  Bw_obs.Metrics.incr ~by:!iterations
    (Bw_obs.Metrics.counter "fusion.bisect.iterations");
  match Cost.validate g result with
  | Ok () -> result
  | Error reason ->
    (* The heuristic guarantees validity; a failure indicates a bug. *)
    invalid_arg ("multi_partition produced an invalid plan: " ^ reason)

(* Enumerate canonical set partitions (node i joins an existing block or
   opens the next one), validate, order blocks topologically, minimise. *)
let exhaustive ?(objective = Cost.bandwidth_cost) (g : Fusion_graph.t) =
  let n = Fusion_graph.node_count g in
  if n > 12 then invalid_arg "exhaustive: too many statements";
  let best_cost = ref max_int and best = ref None in
  let assignment = Array.make n 0 in
  let try_assignment blocks_used =
    (* preventing pairs separated? *)
    let ok_preventing =
      List.for_all
        (fun (u, v) -> assignment.(u) <> assignment.(v))
        g.Fusion_graph.preventing
    in
    if ok_preventing then begin
      (* contract dependences onto blocks and topo-sort *)
      let block_graph = Bw_graph.Digraph.create ~size_hint:blocks_used () in
      Bw_graph.Digraph.ensure_nodes block_graph blocks_used;
      Bw_graph.Digraph.iter_edges g.Fusion_graph.deps (fun u v ->
          if assignment.(u) <> assignment.(v) then
            Bw_graph.Digraph.add_edge block_graph assignment.(u) assignment.(v));
      match Bw_graph.Topo.sort block_graph with
      | None -> ()
      | Some order ->
        let partitions =
          List.map
            (fun block ->
              List.init n (fun i -> i)
              |> List.filter (fun i -> assignment.(i) = block))
            order
        in
        let cost = objective g partitions in
        if cost < !best_cost then begin
          best_cost := cost;
          best := Some partitions
        end
    end
  in
  let rec go i blocks_used =
    if i = n then try_assignment blocks_used
    else
      for b = 0 to min blocks_used (n - 1) do
        assignment.(i) <- b;
        go (i + 1) (max blocks_used (b + 1))
      done
  in
  go 0 0;
  match !best with
  | Some partitions -> partitions
  | None -> Cost.unfused g

let fuse_program p =
  let g = Fusion_graph.build p in
  let plan = multi_partition g in
  Result.map (fun p' -> (p', plan)) (Bw_transform.Fuse.apply_plan p plan)
